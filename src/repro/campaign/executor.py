"""Fault-tolerant campaign execution engine.

The paper's evaluation is tens of thousands of guest executions in which
crashing and hanging are *expected outcomes*.  This module makes the
harness survive them at scale:

- **Process isolation** (``workers > 0``): runs execute on a pool of
  forked worker processes.  A guest crash, segfault-equivalent worker
  death, or unexpected exception is contained to its worker and
  classified; the orchestrator never dies with a guest.
- **Wall-clock watchdog**: each run gets a SIGALRM watchdog inside the
  executing process (serial or worker), catching guests that hang
  without charging FP ops.  In pool mode the orchestrator additionally
  kills workers that blow through ``wall_clock_timeout`` with signals
  blocked — the run is classified Timeout either way.
- **Retry with bounded backoff + worker recycling**: harness-side
  failures (exceptions outside the guest boundary, workers dying before
  entering the guest) are retried up to ``max_retries`` times with
  exponential backoff; the worker involved is recycled.  Guest outcomes
  are never retried — they are the data.
- **Checkpoint/resume**: every classified run is appended to a
  :class:`~repro.campaign.journal.RunJournal` keyed by its deterministic
  RNG stream name, so a killed campaign resumes exactly where it
  stopped and replays bit-identically.
- **Graceful degradation**: a cell whose permanently-failed-run count
  exceeds ``degraded_threshold`` of its runs is marked degraded and
  returned with partial :class:`OutcomeCounts` instead of aborting the
  sweep.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Dict, List, Optional

from repro.campaign.adaptive import AdaptiveCellStream, AdaptiveConfig
from repro.campaign.journal import RunJournal, RunRecord, run_key
from repro.campaign.outcomes import Outcome, OutcomeCounts
from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    RunExecution,
)
from repro.circuit.liberty import OperatingPoint
from repro.errors.base import ErrorModel
from repro.uarch.injector import MicroArchInjector
from repro.utils.stats import confidence_sample_size
from repro import telemetry
from repro.observe import flight

#: Upper bound on how long the pool coordinator blocks waiting for
#: worker pipes.  A SIGKILLed worker normally surfaces as pipe EOF, but
#: under heavy load that wake-up has been observed to go missing; the
#: bounded wait guarantees the liveness sweep in ``_run_pool`` notices a
#: dead-but-silent worker within one interval instead of hanging the
#: coordinator forever.
_LIVENESS_INTERVAL_S = 5.0


@dataclass
class ExecutorConfig:
    """Knobs of the fault-tolerant executor.

    ``workers=0`` (the default) runs serially in-process — the test and
    library default.  ``wall_clock_timeout`` is per run, in seconds,
    independent of the FP-op budget; ``None`` disables the watchdog.
    """

    workers: int = 0
    wall_clock_timeout: Optional[float] = None
    max_retries: int = 2
    backoff: float = 0.05            # seconds; doubles per attempt
    backoff_cap: float = 2.0
    degraded_threshold: float = 0.05  # failed-run fraction before giving up
    recycle_after: int = 500         # runs per worker before a fresh fork
    kill_grace: float = 5.0          # parent kill = wall timeout + grace
    journal_path: Optional[str] = None
    resume: bool = False
    fsync: str = "group"             # journal durability policy


@dataclass
class CellStats:
    """Executor accounting for one campaign cell."""

    runs: int = 0                # requested runs
    executed: int = 0            # runs executed this invocation
    resumed: int = 0             # runs replayed from the journal
    failed: int = 0              # runs abandoned after retries
    retries: int = 0             # harness-error retries performed
    watchdog_kills: int = 0      # runs stopped by a wall-clock watchdog
    harness_errors: int = 0      # harness-side failures observed
    worker_restarts: int = 0     # workers recycled, replaced or killed
    degraded: bool = False
    wall_time: float = 0.0
    workers: int = 0             # pool size used (0 = serial)
    # Fast-forward accounting (zero when snapshots are off).
    ff_restores: int = 0         # guest runs resumed from a snapshot
    ff_early_exits: int = 0      # runs that reconverged to the golden tail
    ff_ops_skipped: int = 0      # FP ops fast-forwarded past (prefixes)
    ff_ops_replayed: int = 0     # FP ops actually executed in suffixes
    ff_corrupt: int = 0          # snapshots quarantined on failed restore
    ff_cold_starts: int = 0      # runs restarted from the initial state
    # Adaptive sequential-sampling accounting (zero/None when off).
    adaptive: bool = False       # the cell ran under a stopping rule
    stop: Optional[object] = None  # the StopDecision, when one was made
    runs_saved: int = 0          # budget minus runs consumed at the stop
    runs_discarded: int = 0      # speculative results dropped at the stop
    weight_sum: float = 0.0      # Σ importance weights over counted runs
    weighted_non_masked: float = 0.0  # Σ weight·1[non-masked]


class _WorkerHandle:
    """Parent-side view of one forked campaign worker."""

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.task: Optional[int] = None
        self.started: float = 0.0
        self.in_guest = False
        self.runs_done = 0

    @property
    def busy(self) -> bool:
        return self.task is not None

    def assign(self, run_index: int, attempt: int = 0) -> None:
        # The attempt number rides along so a chaos-injected worker
        # kill can bound itself by the executor's retry accounting.
        self.conn.send((run_index, attempt))
        self.task = run_index
        self.started = time.monotonic()
        self.in_guest = False

    def deadline(self, wall_clock_timeout: float, grace: float) -> float:
        return self.started + wall_clock_timeout + grace

    def finish_task(self) -> None:
        self.task = None
        self.in_guest = False
        self.runs_done += 1

    def shutdown(self, timeout: float = 2.0) -> None:
        """Graceful stop, escalating to SIGTERM/SIGKILL."""
        try:
            if self.process.is_alive():
                try:
                    self.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
                self.process.join(timeout)
        finally:
            self.kill()

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(1.0)
        if self.process.is_alive():  # pragma: no cover - stuck in SIGTERM
            self.process.kill()
            self.process.join(1.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class _FixedStream:
    """Fixed-range cell as a trivial run stream (commit on arrival).

    The historical executor behaviour, expressed through the same
    reserve/deliver/abandon interface
    :class:`~repro.campaign.adaptive.AdaptiveCellStream` implements, so
    serial and pool dispatch have exactly one code path each.  Never
    stops, never buffers: a delivered record is released immediately.
    """

    decision = None
    stopped = False
    discarded = 0

    def __init__(self, pending: List[int]):
        self._pending = deque(pending)
        self.backlog = len(pending)
        self.consumed: List[int] = []

    def reserve(self) -> Optional[int]:
        return self._pending.popleft() if self._pending else None

    def deliver(self, run_index: int, record, meta=None):
        self.consumed.append(run_index)
        return [(record, meta)]

    def abandon(self, run_index: int):
        return []


def _chaos_active():
    """The process's chaos injector, or None (imported lazily so the
    chaos package stays an optional leaf dependency of the executor)."""
    from repro import chaos
    return chaos.active()


def _worker_main(conn, runner: CampaignRunner, model: ErrorModel,
                 point: OperatingPoint,
                 wall_clock_timeout: Optional[float],
                 parent_pid: Optional[int] = None) -> None:
    """Worker loop: receive run indices, send classified results.

    Runs in a forked child, so ``runner``/``model``/``point`` are
    inherited (never pickled); only the small result dicts cross the
    pipe.  The ``guest`` marker before each guest execution lets the
    parent tell a guest crash (classify) from a harness death (retry).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Inherited-by-fork telemetry would re-ship the parent's pre-fork
    # totals; zero it so this worker only ever reports its own deltas.
    telemetry.reset()
    # Fork safety: inherited file sinks share the parent's fd offset, so
    # a worker writing them would interleave with (and tear) the parent's
    # trace.  Detach and close the copies — only the parent writes files;
    # worker telemetry and flight captures ride the result pipe instead.
    collector = telemetry.get_collector()
    if collector is not None:
        for sink in collector.detach_sinks():
            try:
                sink.close()
            except Exception:  # pragma: no cover - sink already closed
                pass
        if telemetry.get_trace_context() is not None:
            # The parent is tracing: buffer this worker's closed spans
            # (bounded) so they ship with the next result message and
            # get stitched into the parent's trace file.
            collector.buffer_spans()
    recorder = flight.get_recorder()
    if recorder is not None:
        recorder.sink = None
        recorder.keep_in_memory = False
    try:
        golden = runner.golden()  # already cached pre-fork; cheap
        injector = MicroArchInjector(golden.schedule, golden.masking)
        # The spawner passes its own pid: capturing os.getppid() here
        # instead would race a coordinator SIGKILL — a worker orphaned
        # before this line reads the reaper's pid (1), and the orphan
        # check below can then never fire.
        parent = os.getppid() if parent_pid is None else parent_pid
        while True:
            try:
                # Poll instead of a bare blocking recv: sibling workers
                # inherit each other's pipe fds at fork, so a dead
                # coordinator never EOFs this pipe.  Checking the parent
                # pid each second lets an orphaned worker exit instead
                # of blocking on recv forever (observed after a chaos
                # coordinator SIGKILL).
                while not conn.poll(1.0):
                    if os.getppid() != parent:
                        return
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            task, attempt = (message if isinstance(message, tuple)
                             else (message, 0))
            chaos_injector = _chaos_active()
            if chaos_injector is not None:
                # A planned pre-guest SIGKILL: the parent sees a worker
                # death *before* the guest marker and retries the run as
                # a harness failure — guest outcomes stay untouched.
                chaos_injector.maybe_kill_worker(
                    run_key(runner.workload.name, model.name, point.name,
                            task),
                    attempt,
                )
            start = time.monotonic()
            try:
                execution = runner.execute_run(
                    model, point, task, injector=injector,
                    wall_clock_timeout=wall_clock_timeout,
                    guest_entry=lambda: conn.send(
                        {"type": "guest", "run_index": task}
                    ),
                    attempt=attempt,
                )
            except Exception:
                message = {"type": "harness_error", "run_index": task,
                           "error": traceback.format_exc()}
                if telemetry.enabled():
                    message["telemetry"] = telemetry.get_collector().drain()
                conn.send(message)
                continue
            message = {
                "type": "result", "run_index": task,
                "outcome": execution.outcome.value,
                "injected": execution.injected,
                "uarch_masked": execution.uarch_masked,
                "watchdog": execution.watchdog,
                "unexpected": execution.unexpected,
                "wall_ms": (time.monotonic() - start) * 1000.0,
                "weight": execution.weight,
            }
            if execution.flight is not None:
                message["flight"] = execution.flight
            if execution.fastforward is not None:
                message["fastforward"] = execution.fastforward
            if telemetry.enabled():
                message["telemetry"] = telemetry.get_collector().drain()
            conn.send(message)
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - pipe already gone
            pass


class CampaignExecutor:
    """Runs campaign cells for one benchmark, fault-tolerantly."""

    def __init__(self, runner: CampaignRunner,
                 config: Optional[ExecutorConfig] = None,
                 journal: Optional[RunJournal] = None,
                 monitor=None):
        self.runner = runner
        self.config = config or ExecutorConfig()
        self.monitor = monitor
        # Records of completed adaptive cells, kept so a reallocation
        # grant (re-entering run_cell with a raised ceiling) resumes
        # from memory even without a journal.
        self._adaptive_cache: Dict[tuple, Dict[int, RunRecord]] = {}
        self._owns_journal = False
        if journal is not None:
            self.journal = journal
        elif self.config.journal_path:
            self.journal = RunJournal.open(self.config.journal_path,
                                           seed=runner.seed,
                                           resume=self.config.resume,
                                           fsync=self.config.fsync)
            self._owns_journal = True
        else:
            self.journal = None

    def close(self) -> None:
        recorder = flight.get_recorder()
        if recorder is not None:
            recorder.flush()
        if self.monitor is not None:
            self.monitor.close()
        if self._owns_journal and self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "CampaignExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- cell execution ----------------------------------------------------------
    def run_cell(self, model: ErrorModel, point: OperatingPoint,
                 runs: Optional[int] = None,
                 adaptive: Optional[AdaptiveConfig] = None
                 ) -> CampaignResult:
        if runs is None:
            runs = confidence_sample_size()  # 1068
        # Narrow the campaign-level trace context to this cell before
        # any worker forks: children inherit the cell-scoped context,
        # so their buffered spans arrive pre-stamped for stitching.
        base_ctx = telemetry.get_trace_context()
        if base_ctx is not None:
            cell = (f"{self.runner.workload.name}/{model.name}/"
                    f"{point.name}")
            telemetry.set_trace_context(base_ctx.for_cell(cell))
        try:
            with telemetry.span("campaign.cell",
                                workload=self.runner.workload.name,
                                model=model.name, point=point.name,
                                runs=runs):
                return self._run_cell(model, point, runs,
                                      adaptive=adaptive)
        finally:
            if base_ctx is not None:
                telemetry.set_trace_context(base_ctx)

    def _run_cell(self, model: ErrorModel, point: OperatingPoint,
                  runs: int,
                  adaptive: Optional[AdaptiveConfig] = None
                  ) -> CampaignResult:
        start = time.monotonic()
        golden = self.runner.golden()  # harness-side: a failure here is fatal
        stats = CellStats(runs=runs)
        workload = self.runner.workload.name
        cell_key = (workload, model.name, point.name)

        records: Dict[int, RunRecord] = {}
        if self.journal is not None:
            for idx, record in self.journal.completed_runs(
                    workload, model.name, point.name).items():
                if 0 <= idx < runs:
                    records[idx] = record
        if adaptive is not None:
            # A previous adaptive pass over this cell (e.g. before a
            # reallocation grant) counts as resumable state too.
            for idx, record in self._adaptive_cache.get(cell_key,
                                                        {}).items():
                if 0 <= idx < runs:
                    records.setdefault(idx, record)
        stats.resumed = len(records)

        if self.monitor is not None:
            self.monitor.begin_cell(workload, model.name, point.name,
                                    runs, resumed=stats.resumed)

        if adaptive is not None:
            stats.adaptive = True
            stream = AdaptiveCellStream(adaptive, runs, prior=records)
        else:
            stream = _FixedStream([i for i in range(runs)
                                   if i not in records])
        if stream.backlog > 0 and not stream.stopped:
            if self.config.workers > 0 and self._fork_available():
                executed = self._run_pool(model, point, stream, runs,
                                          stats)
            else:
                executed = self._run_serial(model, point, stream, runs,
                                            stats)
            records.update(executed)

        stats.executed = len(records) - stats.resumed
        stats.wall_time = time.monotonic() - start

        if adaptive is not None:
            counted = list(stream.consumed)
            stats.failed = stream.abandoned
            stats.stop = stream.decision
            stats.runs_saved = max(0, runs - len(counted))
            stats.runs_discarded = stream.discarded
            self._adaptive_cache[cell_key] = dict(records)
            if stream.decision is not None:
                if self.journal is not None:
                    self.journal.record_stop(workload, model.name,
                                             point.name, stream.decision)
                on_stop = getattr(self.monitor, "on_stop", None)
                if on_stop is not None:
                    on_stop(stream.decision)
        else:
            counted = sorted(records)
            stats.failed = runs - len(records)

        counts = OutcomeCounts()
        uarch_masked = 0
        no_injection = 0
        for idx in counted:
            record = records[idx]
            counts.record(Outcome(record.outcome))
            uarch_masked += record.uarch_masked
            if not record.injected:
                no_injection += 1
            weight = float(getattr(record, "weight", 1.0))
            stats.weight_sum += weight
            if record.outcome != Outcome.MASKED.value:
                stats.weighted_non_masked += weight
        if telemetry.enabled():
            telemetry.count("campaign.cells")
            telemetry.count("campaign.runs.executed", stats.executed)
            telemetry.count("campaign.runs.resumed", stats.resumed)
            telemetry.count("campaign.runs.failed", stats.failed)
            telemetry.count("campaign.retries", stats.retries)
            telemetry.count("campaign.watchdog_kills", stats.watchdog_kills)
            telemetry.count("campaign.harness_errors", stats.harness_errors)
            telemetry.count("campaign.worker_restarts",
                            stats.worker_restarts)
            if stats.adaptive:
                telemetry.count("campaign.runs.saved", stats.runs_saved)
                telemetry.count("campaign.runs.discarded",
                                stats.runs_discarded)
            for outcome, n in counts.counts.items():
                if n:
                    telemetry.count(f"campaign.outcome.{outcome.value}", n)
        result = CampaignResult(
            workload=workload,
            model=model.name,
            point=point.name,
            counts=counts,
            error_ratio=model.error_ratio(golden.profile, point),
            uarch_masked=uarch_masked,
            runs_without_injection=no_injection,
            seed=self.runner.seed,
            stats=stats,
        )
        if self.journal is not None:
            self.journal.record_cell(result)
        recorder = flight.get_recorder()
        if recorder is not None:
            recorder.flush()
        if self.monitor is not None:
            self.monitor.end_cell(result)
        return result

    @staticmethod
    def _fork_available() -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    def _fail_budget(self, runs: int) -> int:
        return int(self.config.degraded_threshold * runs)

    def _backoff(self, attempt: int) -> float:
        return min(self.config.backoff_cap,
                   self.config.backoff * (2.0 ** attempt))

    def _journal_run(self, record: RunRecord) -> None:
        if self.journal is not None:
            self.journal.record_run(record)

    def _commit_run(self, record: RunRecord, stats: CellStats,
                    flight_payload: Optional[dict] = None) -> None:
        """Everything that happens to one classified run, in order:
        flight emission (parent side only), journal append, monitor tick.
        """
        if flight_payload is not None:
            flight.emit_run(flight_payload, wall_ms=record.wall_ms,
                            retries=record.retries)
        self._journal_run(record)
        if self.monitor is not None:
            self.monitor.on_run(record, stats)

    def _flight_truncated(self, model: ErrorModel, point: OperatingPoint,
                          record: RunRecord) -> None:
        """Record a run whose worker died holding the victim chain."""
        if not flight.enabled():
            return
        flight.emit_truncated(
            self.runner.workload.name, model.name, point.name,
            record.run_index, self.runner.seed,
            run_key(self.runner.workload.name, model.name, point.name,
                    record.run_index),
            record.outcome, watchdog=record.watchdog,
            unexpected=record.unexpected, wall_ms=record.wall_ms,
            retries=record.retries,
        )

    def _journal_error(self, model: ErrorModel, point: OperatingPoint,
                       run_index: int, attempt: int, error: str) -> None:
        if self.journal is not None:
            self.journal.record_harness_error(
                run_key(self.runner.workload.name, model.name, point.name,
                        run_index),
                attempt, error,
            )

    @staticmethod
    def _track_fastforward(stats: CellStats,
                           info: Optional[dict]) -> None:
        """Fold one run's restore/replay counters into the cell stats."""
        if not info:
            return
        stats.ff_restores += 1
        stats.ff_ops_skipped += int(info.get("ops_skipped", 0))
        stats.ff_ops_replayed += int(info.get("ops_replayed", 0))
        stats.ff_corrupt += int(info.get("corrupt", 0))
        if info.get("cold_start"):
            stats.ff_cold_starts += 1
        if "early_exit" in info:
            stats.ff_early_exits += 1

    def _make_record(self, model: ErrorModel, point: OperatingPoint,
                     run_index: int, execution: RunExecution,
                     wall_ms: float, retries: int) -> RunRecord:
        telemetry.observe("campaign.run_ms", wall_ms)
        return RunRecord(
            workload=self.runner.workload.name, model=model.name,
            point=point.name, run_index=run_index,
            outcome=execution.outcome.value, injected=execution.injected,
            uarch_masked=execution.uarch_masked,
            watchdog=execution.watchdog, unexpected=execution.unexpected,
            wall_ms=wall_ms, retries=retries,
            weight=float(getattr(execution, "weight", 1.0)),
        )

    def _release_records(self, released, model: ErrorModel,
                         point: OperatingPoint, stats: CellStats,
                         out: Dict[int, RunRecord]) -> None:
        """Commit records a stream released, in the stream's order.

        ``meta`` distinguishes a run carrying a flight payload from one
        whose worker died holding the victim chain (truncated flight).
        """
        for record, meta in released:
            out[record.run_index] = record
            flight_payload = None
            if isinstance(meta, tuple):
                if meta[0] == "flight":
                    flight_payload = meta[1]
                elif meta[0] == "truncated":
                    self._flight_truncated(model, point, record)
            self._commit_run(record, stats, flight_payload)

    # -- serial mode -------------------------------------------------------------
    def _run_serial(self, model: ErrorModel, point: OperatingPoint,
                    stream, runs: int,
                    stats: CellStats) -> Dict[int, RunRecord]:
        cfg = self.config
        golden = self.runner.golden()
        injector = MicroArchInjector(golden.schedule, golden.masking)
        fail_budget = self._fail_budget(runs)
        out: Dict[int, RunRecord] = {}
        failed = 0
        while True:
            run_index = stream.reserve()
            if run_index is None:
                break
            record = None
            for attempt in range(cfg.max_retries + 1):
                start = time.monotonic()
                try:
                    execution = self.runner.execute_run(
                        model, point, run_index, injector=injector,
                        wall_clock_timeout=cfg.wall_clock_timeout,
                        attempt=attempt,
                    )
                except Exception:
                    stats.harness_errors += 1
                    self._journal_error(model, point, run_index, attempt,
                                        traceback.format_exc())
                    if attempt < cfg.max_retries:
                        stats.retries += 1
                        time.sleep(self._backoff(attempt))
                        continue
                    break
                if execution.watchdog:
                    stats.watchdog_kills += 1
                self._track_fastforward(stats, execution.fastforward)
                record = self._make_record(
                    model, point, run_index, execution,
                    wall_ms=(time.monotonic() - start) * 1000.0,
                    retries=attempt,
                )
                break
            if record is None:
                failed += 1
                self._release_records(stream.abandon(run_index), model,
                                      point, stats, out)
                if failed > fail_budget:
                    stats.degraded = True
                    break
                continue
            self._release_records(
                stream.deliver(run_index, record,
                               ("flight", execution.flight)),
                model, point, stats, out)
        return out

    # -- pool mode ---------------------------------------------------------------
    def _spawn(self, ctx, model: ErrorModel,
               point: OperatingPoint) -> _WorkerHandle:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_worker_main,
            args=(child_conn, self.runner, model, point,
                  self.config.wall_clock_timeout, os.getpid()),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(process, parent_conn)

    def _run_pool(self, model: ErrorModel, point: OperatingPoint,
                  stream, runs: int,
                  stats: CellStats) -> Dict[int, RunRecord]:
        cfg = self.config
        ctx = multiprocessing.get_context("fork")
        pool_size = max(1, min(cfg.workers, stream.backlog))
        stats.workers = pool_size

        queue: deque = deque()          # promoted retries awaiting a worker
        retry_heap: List = []           # (eligible_at, run_index)
        attempts: Dict[int, int] = {}   # harness attempts per run index
        out: Dict[int, RunRecord] = {}
        fail_budget = self._fail_budget(runs)
        failed = 0

        workers = [self._spawn(ctx, model, point) for _ in range(pool_size)]
        try:
            while True:
                now = time.monotonic()
                # Promote retries whose backoff has elapsed.
                while retry_heap and retry_heap[0][0] <= now:
                    queue.append(heapq.heappop(retry_heap)[1])
                if stream.stopped:
                    # Stop decision made: any queued or retrying index is
                    # at or past the stop point (every earlier index was
                    # consumed to reach the decision) — drop them and
                    # just drain the workers still busy.
                    queue.clear()
                    retry_heap.clear()
                # Hand work to idle workers: retries first (they block
                # the commit frontier), then fresh indices from the
                # stream.
                for index, worker in enumerate(workers):
                    if worker.busy:
                        continue
                    if queue:
                        run_index = queue.popleft()
                    else:
                        run_index = stream.reserve()
                        if run_index is None:
                            break
                    try:
                        worker.assign(run_index,
                                      attempts.get(run_index, 0))
                    except (BrokenPipeError, OSError):
                        # Worker died while idle: respawn, requeue.
                        stats.worker_restarts += 1
                        worker.kill()
                        workers[index] = self._spawn(ctx, model, point)
                        queue.appendleft(run_index)
                busy = [w for w in workers if w.busy]
                if not busy:
                    if retry_heap and not stream.stopped:
                        time.sleep(max(0.0, retry_heap[0][0]
                                       - time.monotonic()))
                        continue
                    break  # all work drained (or stop decision made)
                timeout = _LIVENESS_INTERVAL_S
                if cfg.wall_clock_timeout:
                    deadline = min(
                        w.deadline(cfg.wall_clock_timeout, cfg.kill_grace)
                        for w in busy
                    )
                    timeout = min(timeout,
                                  max(0.0, deadline - time.monotonic()))
                if retry_heap:
                    wait_retry = max(0.0, retry_heap[0][0] - time.monotonic())
                    timeout = min(timeout, wait_retry)
                ready = set(_connection_wait([w.conn for w in busy],
                                             timeout=timeout))
                now = time.monotonic()
                for index, worker in enumerate(workers):
                    if not worker.busy:
                        continue
                    if (worker.conn in ready
                            or not worker.process.is_alive()):
                        replace = self._drain_worker(
                            worker, model, point, stats, out,
                            attempts, retry_heap, stream,
                        )
                        if replace or (worker.runs_done
                                       >= cfg.recycle_after):
                            stats.worker_restarts += 1
                            worker.shutdown()
                            workers[index] = self._spawn(ctx, model, point)
                    elif (cfg.wall_clock_timeout
                          and now >= worker.deadline(cfg.wall_clock_timeout,
                                                     cfg.kill_grace)):
                        # Watchdog kill: the in-worker SIGALRM never came
                        # back (signals blocked / stuck in native code).
                        run_index = worker.task
                        worker.kill()
                        stats.watchdog_kills += 1
                        stats.worker_restarts += 1
                        telemetry.observe("campaign.run_ms",
                                          (now - worker.started) * 1000.0)
                        record = RunRecord(
                            workload=self.runner.workload.name,
                            model=model.name, point=point.name,
                            run_index=run_index,
                            outcome=Outcome.TIMEOUT.value,
                            watchdog=True,
                            unexpected="worker killed by watchdog",
                            wall_ms=(now - worker.started) * 1000.0,
                            retries=attempts.get(run_index, 0),
                        )
                        self._release_records(
                            stream.deliver(run_index, record,
                                           ("truncated", True)),
                            model, point, stats, out)
                        workers[index] = self._spawn(ctx, model, point)
                # Count permanently failed runs (exhausted retries).
                failed = sum(
                    1 for idx, n in attempts.items()
                    if n > cfg.max_retries and idx not in out
                )
                if failed > fail_budget:
                    stats.degraded = True
                    break
        finally:
            for worker in workers:
                worker.shutdown()
        return out

    def _drain_worker(self, worker: _WorkerHandle, model: ErrorModel,
                      point: OperatingPoint, stats: CellStats,
                      out: Dict[int, RunRecord], attempts: Dict[int, int],
                      retry_heap: List, stream) -> bool:
        """Consume everything a readable worker sent.

        Returns True when the worker must be replaced (it died or hit a
        harness error and gets recycled).
        """
        while True:
            try:
                if not worker.conn.poll():
                    if worker.process.is_alive():
                        return False
                    # Dead worker whose pipe never signalled EOF (seen
                    # under load): fall through to the death handling.
                    message = None
                else:
                    message = worker.conn.recv()
            except (EOFError, OSError):
                message = None
            if isinstance(message, dict) and "telemetry" in message:
                telemetry.merge(message.pop("telemetry"))
            if message is None:
                # Worker died mid-task (segfault-equivalent).
                run_index = worker.task
                worker.process.join(1.0)
                exitcode = worker.process.exitcode
                if worker.in_guest:
                    # Death inside the guest boundary: a guest Crash,
                    # contained and classified — never retried.
                    record = RunRecord(
                        workload=self.runner.workload.name,
                        model=model.name, point=point.name,
                        run_index=run_index,
                        outcome=Outcome.CRASH.value,
                        unexpected=(f"worker died in guest "
                                    f"(exit {exitcode})"),
                        retries=attempts.get(run_index, 0),
                    )
                    self._release_records(
                        stream.deliver(run_index, record,
                                       ("truncated", True)),
                        model, point, stats, out)
                else:
                    permanent = self._record_harness_failure(
                        model, point, run_index, stats, attempts,
                        retry_heap,
                        error=f"worker died before guest (exit {exitcode})",
                    )
                    if permanent:
                        self._release_records(stream.abandon(run_index),
                                              model, point, stats, out)
                worker.kill()
                return True
            kind = message.get("type")
            if kind == "guest":
                worker.in_guest = True
                continue
            if kind == "harness_error":
                run_index = message["run_index"]
                permanent = self._record_harness_failure(
                    model, point, run_index, stats, attempts, retry_heap,
                    error=message["error"],
                )
                if permanent:
                    self._release_records(stream.abandon(run_index),
                                          model, point, stats, out)
                worker.finish_task()
                return True  # recycle the worker after a harness error
            if kind == "result":
                run_index = message["run_index"]
                execution = RunExecution(
                    outcome=Outcome(message["outcome"]),
                    injected=message["injected"],
                    uarch_masked=message["uarch_masked"],
                    watchdog=message["watchdog"],
                    unexpected=message["unexpected"],
                    weight=float(message.get("weight", 1.0)),
                )
                if execution.watchdog:
                    stats.watchdog_kills += 1
                self._track_fastforward(stats, message.get("fastforward"))
                record = self._make_record(
                    model, point, run_index, execution,
                    wall_ms=message["wall_ms"],
                    retries=attempts.get(run_index, 0),
                )
                self._release_records(
                    stream.deliver(run_index, record,
                                   ("flight", message.get("flight"))),
                    model, point, stats, out)
                worker.finish_task()
                return False

    def _record_harness_failure(self, model: ErrorModel,
                                point: OperatingPoint, run_index: int,
                                stats: CellStats, attempts: Dict[int, int],
                                retry_heap: List, error: str) -> bool:
        """Journal and schedule a harness failure.

        Returns True when the run's retries are exhausted — permanently
        failed, so an adaptive stream must skip its index.
        """
        cfg = self.config
        attempt = attempts.get(run_index, 0)
        stats.harness_errors += 1
        self._journal_error(model, point, run_index, attempt, error)
        attempts[run_index] = attempt + 1
        if attempt < cfg.max_retries:
            stats.retries += 1
            heapq.heappush(
                retry_heap,
                (time.monotonic() + self._backoff(attempt), run_index),
            )
            return False
        return True
