"""Checkpointed fast-forward execution of injection runs.

Every cycle before an injection point is fault-free and therefore
identical to the golden run.  This module exploits that: the golden pass
of a checkpointable workload is driven through its step protocol
(:meth:`Workload.initial_state` / :meth:`~Workload.advance` /
:meth:`~Workload.finalize`) exactly once per campaign, recording at every
step boundary the FP-stream position, a canonical state digest and — at
configurable intervals — a copy-on-write snapshot of the workload state.
Each injection run then restores the nearest snapshot whose FP-stream
position precedes *all* of its corruption indices and replays only the
post-injection suffix.

Bit-identity argument (proved empirically by
``tests/campaign/test_fastforward_differential.py``):

1. A snapshot at boundary *b* is valid for a corruption map iff for every
   corrupted op the boundary's per-op counter is <= the op's first victim
   index.  The prefix of a full replay up to *b* then applies no
   corruption, so its state, per-op counters, ``ops_executed`` and
   ``_armed`` flag at *b* equal the golden run's — which is exactly what
   restore reproduces.  The suffix therefore computes the same value
   stream, applies corruption at the same dynamic indices, trips the
   same op-budget timeout and the same armed FP traps.
2. The **early exit**: once every corruption index has been consumed, a
   run whose state digest matches the golden run's at *any* boundary
   (with the same continue/stop decision) can only replay the golden
   tail from that boundary — identical state plus identical remaining
   corruption (none) is a complete determinant of the remaining
   execution — so it returns the golden output without executing the
   tail.  Two side conditions keep this exact: the run's op budget must
   cover the golden tail (otherwise the tail would legitimately trip
   the Timeout budget and the run must replay it), and for trap-enabled
   workloads the *golden trap probe* must have passed: the golden build
   runs with traps armed, and only if the whole golden stream is finite
   (the probe does not fire) is the early exit enabled, since a
   reconverged run executes the golden tail with traps armed.

Non-checkpointable workloads (``Workload.checkpointable`` is False) and
campaigns run with ``--no-snapshots`` fall back to full replay, which
remains the reference semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.fpu.formats import FpOp
from repro.uarch.snapshot import (
    PageCorruption,
    PageStore,
    StateImage,
    decode_state,
    encode_state,
    state_digest,
)
from repro.workloads.base import FPContext, Workload
from repro import telemetry

#: Default snapshot spacing, in step-protocol boundaries.  Dense enough
#: that uniformly placed injections skip half their prefix on average,
#: sparse enough that snapshot capture stays a small fraction of the
#: golden run.
DEFAULT_INTERVAL = 7


@dataclass(frozen=True)
class FastForwardConfig:
    """Campaign-level fast-forward knobs.

    ``interval=None`` means "initial snapshot only" (the CLI's
    ``--snapshot-interval inf``): runs still reuse the golden output and
    the early exit, but always replay from the initial state.

    ``page_store_dir`` names a local artifact-store directory to back
    the snapshot pages (the ``pages`` namespace of
    :class:`~repro.artifacts.ArtifactStore`).  Every field is a plain
    value, so the config survives a JSON round trip — shard workers
    receive it inside the campaign spec.
    """

    enabled: bool = True
    interval: Optional[int] = DEFAULT_INTERVAL
    page_store_dir: Optional[str] = None

    def __post_init__(self):
        if self.interval is not None and self.interval < 1:
            raise ValueError(
                f"snapshot interval must be >= 1, got {self.interval}"
            )

    def to_dict(self) -> dict:
        return {"enabled": self.enabled, "interval": self.interval,
                "page_store_dir": self.page_store_dir}

    @classmethod
    def from_dict(cls, data: dict) -> "FastForwardConfig":
        return cls(enabled=bool(data.get("enabled", True)),
                   interval=data.get("interval", DEFAULT_INTERVAL),
                   page_store_dir=data.get("page_store_dir"))

    def make_pages(self) -> PageStore:
        """A page store honouring ``page_store_dir`` (shared when set)."""
        if self.page_store_dir is None:
            return PageStore()
        from repro.artifacts import ArtifactStore

        return PageStore(artifacts=ArtifactStore.local(self.page_store_dir))


@dataclass(frozen=True)
class Boundary:
    """Golden-run facts recorded at one step-protocol boundary.

    Boundary *k* is the state after *k* ``advance`` calls (0 = initial
    state).  ``more`` is whether the golden run called ``advance`` again
    from here — the continue/stop decision is part of the fault-free
    prefix, so it holds for any run restored at this boundary too.
    """

    index: int
    counters: Dict[FpOp, int]
    ops_executed: int
    digest: str
    more: bool
    image: Optional[StateImage] = None


class SnapshotStore:
    """Per-(workload, input) golden-run service with periodic snapshots.

    Built once per campaign — in the orchestrator, before workers fork —
    and then shared read-only: :meth:`run_injection` never mutates the
    store, so forked workers fast-forward from the parent's pages without
    copies or locks.
    """

    def __init__(self, workload_name: str,
                 interval: Optional[int] = DEFAULT_INTERVAL,
                 pages_factory=PageStore):
        if interval is not None and interval < 1:
            raise ValueError(f"snapshot interval must be >= 1, got {interval}")
        self.workload_name = workload_name
        self.interval = interval
        self._pages_factory = pages_factory
        self.pages = pages_factory()
        self.boundaries: List[Boundary] = []
        self.golden_output: object = None
        self.early_exit_safe = False
        self.total_ops = 0  # golden ops_executed after finalize
        #: (digest, more) -> deepest golden boundary with that state.
        #: Deepest = smallest remaining tail, so budget feasibility is
        #: checked against the cheapest equivalent continuation.
        self._by_digest: Dict[tuple, Boundary] = {}
        #: Boundary indices whose snapshot failed restore verification:
        #: quarantined for the rest of the campaign, never selected
        #: again.  Restores fall back to shallower snapshots or a cold
        #: start — slower, never wrong.
        self._quarantined: set = set()
        self.corrupt_snapshots = 0
        self.cold_starts = 0
        self._built = False

    # -- golden build ------------------------------------------------------------
    def _snapshot_here(self, index: int) -> bool:
        if index == 0:
            return True  # the initial state: always-valid fallback
        return self.interval is not None and index % self.interval == 0

    def _record_boundary(self, ctx: FPContext, state: Dict[str, object],
                         more: bool) -> None:
        index = len(self.boundaries)
        counters, ops_executed = ctx.checkpoint_position()
        image = (encode_state(self.pages, state)
                 if self._snapshot_here(index) else None)
        boundary = Boundary(
            index=index,
            counters=counters,
            ops_executed=ops_executed,
            digest=state_digest(state),
            more=more,
            image=image,
        )
        self.boundaries.append(boundary)
        # Later boundaries overwrite: keep the deepest occurrence of a
        # state (smallest golden tail) for the early-exit lookup.
        self._by_digest[(boundary.digest, more)] = boundary

    def build(self, workload: Workload, ctx: FPContext,
              trap_probe: Optional[bool] = None) -> object:
        """Execute the golden pass once, recording boundaries + snapshots.

        ``trap_probe`` (default: the context's ``trap_nonfinite``) runs
        the golden pass with FP traps armed.  Completing it proves the
        whole golden stream finite, enabling the early exit; if the probe
        fires, :class:`~repro.workloads.base.GuestFpException` propagates
        and the caller rebuilds with ``trap_probe=False`` on a fresh
        context (the early exit then stays disabled).
        """
        if not workload.checkpointable:
            raise ValueError(f"{workload.name} is not checkpointable")
        if trap_probe is None:
            trap_probe = ctx.trap_nonfinite
        self.pages = self._pages_factory()
        self.boundaries = []
        self._by_digest = {}
        self._quarantined = set()
        self.corrupt_snapshots = 0
        self.cold_starts = 0
        self.early_exit_safe = bool(trap_probe) or not ctx.trap_nonfinite
        if trap_probe:
            ctx._armed = True
        try:
            state = workload.initial_state()
            self._record_boundary(ctx, state, more=True)
            more = True
            while more:
                more = workload.advance(ctx, state)
                self._record_boundary(ctx, state, more=more)
            output = workload.finalize(ctx, state)
        finally:
            if trap_probe:
                ctx._armed = False
        self.golden_output = output
        self.total_ops = ctx.ops_executed
        self._built = True
        return output

    # -- injection-run service -----------------------------------------------------
    def select(self,
               corruption: Dict[FpOp, Dict[int, int]]) -> Optional[Boundary]:
        """Deepest valid snapshot whose FP position precedes every corruption.

        Quarantined boundaries (failed restore verification) are never
        selected.  Returns None when no usable snapshot remains — the
        caller then cold-starts from the workload's initial state, which
        is always available and always valid.
        """
        first_index = {op: min(victims)
                       for op, victims in corruption.items() if victims}
        best: Optional[Boundary] = None
        for boundary in self.boundaries:
            if (boundary.image is None
                    or boundary.index in self._quarantined):
                continue
            if all(boundary.counters.get(op, 0) <= first
                   for op, first in first_index.items()):
                best = boundary
            else:
                break  # counters only grow: later boundaries invalid too
        return best

    def _materialise(self, workload: Workload,
                     corruption: Dict[FpOp, Dict[int, int]],
                     info: Optional[dict]) -> tuple:
        """A verified ``(boundary, state)`` pair for one injection run.

        Decodes the deepest valid snapshot and proves it faithful (the
        page hashes via :meth:`PageStore.get`, then the whole state
        against the boundary's golden digest).  A snapshot that fails is
        quarantined and the next shallower one is tried; with none left,
        the run cold-starts from ``workload.initial_state()`` — which by
        the step-protocol contract performs no FP ops and is exactly the
        state boundary 0 captured, so its metadata is reused and the
        replay stays bit-identical, just unaccelerated.
        """
        while True:
            boundary = self.select(corruption)
            if boundary is None:
                self.cold_starts += 1
                if info is not None:
                    info["cold_start"] = True
                telemetry.count("campaign.ff.cold_starts")
                return self.boundaries[0], workload.initial_state()
            try:
                state = decode_state(self.pages, boundary.image)
                if state_digest(state) != boundary.digest:
                    raise PageCorruption(
                        f"boundary {boundary.index} state digest mismatch")
                return boundary, state
            except PageCorruption:
                self._quarantined.add(boundary.index)
                self.corrupt_snapshots += 1
                if info is not None:
                    info["corrupt"] = info.get("corrupt", 0) + 1
                telemetry.count("campaign.ff.corrupt_snapshots")

    @staticmethod
    def _consumed(ctx: FPContext,
                  last_index: Dict[FpOp, int]) -> bool:
        return all(ctx.counters[op] > last
                   for op, last in last_index.items())

    def _tail_fits(self, ctx: FPContext, golden: Boundary) -> bool:
        """Whether the golden tail from ``golden`` fits the op budget.

        A full replay would charge those ops; if they would trip the
        budget the run's true outcome is Timeout and the early exit must
        not fire.
        """
        if ctx.op_budget is None:
            return True
        tail = self.total_ops - golden.ops_executed
        return ctx.ops_executed + tail <= ctx.op_budget

    def run_injection(self, workload: Workload, ctx: FPContext,
                      corruption: Dict[FpOp, Dict[int, int]],
                      info: Optional[dict] = None) -> object:
        """Execute one injection run, fast-forwarded.

        Restores the deepest valid snapshot into ``ctx``/a fresh state,
        replays the suffix, and takes the early exit when the run
        provably reconverges to the golden tail.  Guest exceptions
        (budget timeout, traps, crashes) propagate to the caller's
        classification boundary exactly as under full replay.

        ``info``, when given, is filled in place (so skip statistics
        survive a guest exception): ``boundary``/``ops_skipped`` on
        restore, ``ops_replayed`` and optionally ``early_exit`` at the
        end.
        """
        if not self._built:
            raise RuntimeError("snapshot store used before build()")
        boundary, state = self._materialise(workload, corruption, info)
        ctx.restore_position(boundary.counters, boundary.ops_executed)
        if info is not None:
            info["boundary"] = boundary.index
            info["ops_skipped"] = boundary.ops_executed
        telemetry.count("campaign.ff.restores")
        if boundary.ops_executed:
            telemetry.count("campaign.ff.ops_skipped", boundary.ops_executed)
        ops_at_restore = ctx.ops_executed
        last_index = {op: max(victims)
                      for op, victims in corruption.items() if victims}
        more = boundary.more
        while more:
            more = workload.advance(ctx, state)
            if self.early_exit_safe and self._consumed(ctx, last_index):
                golden = self._by_digest.get((state_digest(state), more))
                if golden is not None and self._tail_fits(ctx, golden):
                    # Reconverged onto the golden trajectory: identical
                    # state, no corruption left, budget covers the tail
                    # — the remaining execution is the golden tail, so
                    # its output is the golden output.
                    if info is not None:
                        info["early_exit"] = golden.index
                        info["ops_replayed"] = (ctx.ops_executed
                                                - ops_at_restore)
                    telemetry.count("campaign.ff.early_exits")
                    return self.golden_output
        output = workload.finalize(ctx, state)
        if info is not None:
            info["ops_replayed"] = ctx.ops_executed - ops_at_restore
        return output

    # -- observability -------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        snapshots = sum(1 for b in self.boundaries if b.image is not None)
        return {
            "workload": self.workload_name,
            "interval": self.interval if self.interval is not None else "inf",
            "boundaries": len(self.boundaries),
            "snapshots": snapshots,
            "early_exit_safe": self.early_exit_safe,
            "quarantined": len(self._quarantined),
            "corrupt_snapshots": self.corrupt_snapshots,
            "cold_starts": self.cold_starts,
            **self.pages.stats(),
        }
