"""Sharded campaign coordination over the unified artifact store.

Lifts the single-process :class:`~repro.campaign.executor.CampaignExecutor`
to fleet shape: a campaign's cells (model × operating point) are
partitioned by RNG stream key into N shards, fed to workers from a
durable work queue with lease/heartbeat work-stealing, and the per-cell
journals are merged content-addressably into one canonical journal that
is — provably, see ``tests/campaign/test_shard_differential.py`` —
bit-identical to an unsharded run.

Why cells are the sharding granule
----------------------------------
Every run draws exclusively from the RNG stream named by its journal key
``{workload}/{model}/{point}/{run_index}`` under the campaign seed, so a
cell's outcome stream is a pure function of the campaign spec — no state
crosses cell boundaries (the CLI adaptive path evaluates each cell's
stopping rule independently, with no cross-cell reallocation).  Any
assignment of whole cells to any workers therefore commits exactly the
runs the single-process campaign would commit, byte for byte.

Crash/steal convergence
-----------------------
Each work item journals into its own stream
(``streams/journals/<campaign>/<item>.jsonl`` in the artifact store) and
is always executed with ``resume=True``: a worker that re-runs a cell —
after a SIGKILL, or after stealing an expired lease — replays the
committed prefix bit-identically and continues.  Even the pathological
double-writer (a live worker whose lease was stolen on TTL) converges:
both writers append byte-identical records for the same keys, torn
interleavings are quarantined by the journal CRCs, and the merge keeps
one record per key.  Leases are broken only when the owner pid is dead
or the heartbeat has expired.

Merging
-------
:func:`merge_journals` rejects overlapping run keys across shards (two
items may never share a cell — overlap means a corrupted queue, not a
mergeable state), skips torn/CRC-failing lines exactly as resume does,
tolerates empty shards, and emits records in canonical key order, so
the merged bytes are invariant to merge order.  The coordinator then
freezes every input journal and the merged result into the
content-addressed object layer with a manifest ref, making the merge
itself verifiable after the fact.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.artifacts import ArtifactStore, encode_key
from repro.campaign.executor import CampaignExecutor, ExecutorConfig
from repro.campaign.fastforward import FastForwardConfig
from repro.campaign.journal import _crc_ok, _parse_lines, _payload_crc
from repro.campaign.runner import CampaignRunner
from repro.circuit.liberty import OperatingPoint
from repro.errors import store as model_store
from repro.utils import durable
from repro.workloads import make_workload

PathLike = Union[str, Path]

SPEC_VERSION = 1

#: Artifact-store namespaces owned by the sharding subsystem.  Distinct
#: from "model-cache" and "pages", so campaign keys can never alias a
#: cache entry or a snapshot page sharing the same backend.
NS_CAMPAIGNS = "campaigns"
NS_MODELS = "campaign-models"
NS_JOURNALS = "journals"

#: A lease whose heartbeat is older than this is stealable even if the
#: owner pid looks alive (a hung worker holds no work hostage forever).
DEFAULT_LEASE_TTL = 60.0


class ShardError(RuntimeError):
    """A coordination failure (spec mismatch, queue corruption)."""


class MergeConflict(ShardError):
    """Per-shard journals cannot be merged into one campaign."""


def cell_shard(workload: str, model: str, point: str, shards: int) -> int:
    """The shard owning a cell: a stable hash of its RNG stream prefix.

    The prefix ``{workload}/{model}/{point}`` is the name every one of
    the cell's RNG streams starts with, so the partition is a pure
    function of the campaign spec — stable across processes, hosts and
    Python hash randomisation.
    """
    prefix = f"{workload}/{model}/{point}"
    digest = hashlib.sha256(prefix.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % max(1, shards)


# ---------------------------------------------------------------------------
# Campaign spec
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CampaignSpec:
    """Everything a shard worker needs to reproduce its share of a
    campaign, as plain JSON-able values.

    Staged models are referenced by name — the bytes live in the
    artifact store under ``campaign-models/<campaign_id>/<name>`` — so
    the spec stays tiny and workers on any host with the store see the
    exact characterised artifacts the coordinator staged.
    """

    campaign_id: str
    benchmark: str
    seed: int
    runs: int
    shards: int
    points: Tuple[dict, ...]
    models: Tuple[str, ...]
    scale: str = "tiny"
    adaptive: Optional[dict] = None
    fastforward: dict = field(default_factory=lambda:
                              FastForwardConfig().to_dict())
    executor: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if not self.campaign_id or "/" in self.campaign_id:
            raise ValueError(
                f"campaign id {self.campaign_id!r} must be a non-empty "
                f"name without '/'")

    def to_dict(self) -> dict:
        return {
            "version": SPEC_VERSION,
            "campaign_id": self.campaign_id,
            "benchmark": self.benchmark,
            "scale": self.scale,
            "seed": self.seed,
            "runs": self.runs,
            "shards": self.shards,
            "points": list(self.points),
            "models": list(self.models),
            "adaptive": self.adaptive,
            "fastforward": dict(self.fastforward),
            "executor": dict(self.executor),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        version = data.get("version")
        if version != SPEC_VERSION:
            raise ShardError(
                f"unsupported campaign spec version {version!r}")
        return cls(
            campaign_id=data["campaign_id"],
            benchmark=data["benchmark"],
            scale=data.get("scale", "tiny"),
            seed=int(data["seed"]),
            runs=int(data["runs"]),
            shards=int(data["shards"]),
            points=tuple(data["points"]),
            models=tuple(data["models"]),
            adaptive=data.get("adaptive"),
            fastforward=dict(data.get("fastforward") or
                             FastForwardConfig().to_dict()),
            executor=dict(data.get("executor") or {}),
        )

    # -- store round trip --------------------------------------------------------
    def save(self, store: ArtifactStore) -> str:
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          indent=2).encode()
        return store.put(NS_CAMPAIGNS, f"{self.campaign_id}/spec", blob)

    @classmethod
    def load(cls, store: ArtifactStore,
             campaign_id: str) -> "CampaignSpec":
        blob = store.get(NS_CAMPAIGNS, f"{campaign_id}/spec")
        if blob is None:
            raise ShardError(
                f"campaign {campaign_id!r} has no spec in the store")
        return cls.from_dict(json.loads(blob.decode()))

    # -- derived -----------------------------------------------------------------
    def operating_points(self) -> List[OperatingPoint]:
        return [OperatingPoint(name=p["name"], voltage=p["voltage"],
                               temperature_c=p.get("temperature_c", 25.0))
                for p in self.points]

    def items(self) -> List[dict]:
        """One work item per campaign cell, tagged with its home shard."""
        out = []
        for model in self.models:
            for point in self.points:
                item_id = f"{model}--{point['name']}"
                out.append({
                    "id": item_id,
                    "workload": self.benchmark,
                    "model": model,
                    "point": dict(point),
                    "shard": cell_shard(self.benchmark, model,
                                        point["name"], self.shards),
                })
        return out

    @staticmethod
    def point_dict(point: OperatingPoint) -> dict:
        return {"name": point.name, "voltage": point.voltage,
                "temperature_c": point.temperature_c}


def stage_model(store: ArtifactStore, campaign_id: str, model) -> str:
    """Freeze a characterised model into the store for shard workers."""
    key = f"{campaign_id}/{model.name}"
    store.put(NS_MODELS, key, model_store.dumps_model(model),
              target="store")
    return key


def load_staged_model(store: ArtifactStore, campaign_id: str, name: str):
    blob = store.get(NS_MODELS, f"{campaign_id}/{name}")
    if blob is None:
        raise ShardError(
            f"model {name!r} of campaign {campaign_id!r} is not staged")
    return model_store.loads_model(blob)


# ---------------------------------------------------------------------------
# Durable work queue
# ---------------------------------------------------------------------------

def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True
    return pid > 0


class WorkQueue:
    """Filesystem-backed work queue with leases, heartbeats and stealing.

    Layout under ``<store root>/queue/<campaign>/``:

    - ``items/<id>.json``  — the immutable work item (atomic write),
    - ``leases/<id>.json`` — the claim: owner, pid, heartbeat time.
      Created with ``O_EXCL`` so exactly one claimer wins; renewed by
      atomic replace on every completed run,
    - ``done/<id>.json``   — the completion marker with the item's
      result summary (atomic write; presence is the commit point).

    A lease is *stale* — and its item stealable — when the owner pid is
    gone or the heartbeat is older than ``lease_ttl``.  Stealing is
    unlink + ``O_EXCL`` re-create: rival stealers race on the create
    and exactly one wins.  Everything is idempotent: re-running a
    stolen item resumes its journal and re-derives identical records.
    """

    def __init__(self, store: ArtifactStore, campaign_id: str,
                 lease_ttl: float = DEFAULT_LEASE_TTL):
        root = store.local_root
        if root is None:
            raise ShardError("the work queue needs a local store")
        self.store = store
        self.campaign_id = campaign_id
        self.lease_ttl = lease_ttl
        self.root = root / "queue" / encode_key(campaign_id)
        self.items_dir = self.root / "items"
        self.leases_dir = self.root / "leases"
        self.done_dir = self.root / "done"
        for directory in (self.items_dir, self.leases_dir,
                          self.done_dir):
            directory.mkdir(parents=True, exist_ok=True)
            durable.sweep_orphan_tmps(directory)

    # -- population --------------------------------------------------------------
    def populate(self, items: Iterable[dict]) -> int:
        """Write item files, skipping ones that already exist (resume)."""
        created = 0
        for item in items:
            path = self.items_dir / f"{encode_key(item['id'])}.json"
            if path.exists():
                continue
            durable.atomic_write_bytes(
                path, json.dumps(item, sort_keys=True).encode())
            created += 1
        return created

    def items(self) -> List[dict]:
        out = []
        for path in sorted(self.items_dir.glob("*.json")):
            try:
                out.append(json.loads(path.read_text()))
            except (OSError, json.JSONDecodeError):
                continue
        return out

    # -- lease protocol ----------------------------------------------------------
    def _lease_path(self, item_id: str) -> Path:
        return self.leases_dir / f"{encode_key(item_id)}.json"

    def _done_path(self, item_id: str) -> Path:
        return self.done_dir / f"{encode_key(item_id)}.json"

    def lease_info(self, item_id: str) -> Optional[dict]:
        try:
            return json.loads(self._lease_path(item_id).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def _lease_stale(self, lease: Optional[dict]) -> bool:
        if lease is None:
            return True  # unreadable/torn lease: treat as abandoned
        if not _pid_alive(int(lease.get("pid", -1))):
            return True
        return time.time() - float(lease.get("time", 0)) > self.lease_ttl

    def _lease_payload(self, item_id: str, worker_id: str,
                       progress: Optional[dict] = None) -> bytes:
        return json.dumps({
            "item": item_id, "worker": worker_id, "pid": os.getpid(),
            "time": time.time(), "progress": progress or {},
        }).encode()

    def _try_acquire(self, item_id: str, worker_id: str) -> bool:
        path = self._lease_path(item_id)
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            lease = self.lease_info(item_id)
            if lease is not None and not self._lease_stale(lease):
                return False
            # Steal: drop the stale lease, then race for the fresh one.
            try:
                os.unlink(path)
            except OSError:
                pass
            try:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
            except OSError:
                return False  # a rival stealer won
        try:
            os.write(fd, self._lease_payload(item_id, worker_id))
            os.fsync(fd)
        finally:
            os.close(fd)
        return True

    def claim(self, worker_id: str, prefer_shard: Optional[int] = None,
              steal: bool = True) -> Optional[dict]:
        """Lease one runnable item, or None.

        Items of ``prefer_shard`` are tried first; with ``steal=False``
        only that shard's items are considered at all (the strict
        partition used by in-process shard loops — stealing is what
        subprocess workers do when their own shard drains).
        """
        candidates = [i for i in self.items()
                      if not self._done_path(i["id"]).exists()]
        if prefer_shard is not None:
            mine = [i for i in candidates if i["shard"] == prefer_shard]
            others = [i for i in candidates
                      if i["shard"] != prefer_shard]
            candidates = mine + (others if steal else [])
        for item in candidates:
            if self._try_acquire(item["id"], worker_id):
                if self._done_path(item["id"]).exists():
                    # Raced a completer: the work is already committed.
                    self.release(item["id"])
                    continue
                return item
        return None

    def heartbeat(self, item_id: str, worker_id: str,
                  progress: Optional[dict] = None) -> None:
        """Renew a lease (atomic replace keeps rival readers coherent)."""
        durable.atomic_write_bytes(
            self._lease_path(item_id),
            self._lease_payload(item_id, worker_id, progress))

    def release(self, item_id: str) -> None:
        try:
            os.unlink(self._lease_path(item_id))
        except OSError:
            pass

    def complete(self, item_id: str, worker_id: str,
                 summary: Optional[dict] = None) -> None:
        payload = {"item": item_id, "worker": worker_id,
                   "pid": os.getpid(), "time": time.time(),
                   "summary": summary or {}}
        durable.atomic_write_bytes(self._done_path(item_id),
                                   json.dumps(payload).encode())
        self.release(item_id)

    def done_info(self, item_id: str) -> Optional[dict]:
        try:
            return json.loads(self._done_path(item_id).read_text())
        except (OSError, json.JSONDecodeError):
            return None

    # -- aggregate views ---------------------------------------------------------
    def all_done(self) -> bool:
        items = self.items()
        return bool(items) and all(
            self._done_path(i["id"]).exists() for i in items)

    def status(self) -> dict:
        """Aggregate queue state: per-shard progress, live leases."""
        items = self.items()
        shards: Dict[int, Dict[str, int]] = {}
        done = 0
        leases = []
        for item in items:
            entry = shards.setdefault(item["shard"],
                                      {"items": 0, "done": 0})
            entry["items"] += 1
            if self._done_path(item["id"]).exists():
                entry["done"] += 1
                done += 1
                continue
            lease = self.lease_info(item["id"])
            if lease is not None:
                leases.append({
                    "item": item["id"], "shard": item["shard"],
                    "worker": lease.get("worker"),
                    "pid": lease.get("pid"),
                    "alive": _pid_alive(int(lease.get("pid", -1))),
                    "stale": self._lease_stale(lease),
                    "progress": lease.get("progress", {}),
                })
        return {
            "campaign": self.campaign_id,
            "items": len(items),
            "done": done,
            "in_flight": len(leases),
            "shards": {str(k): v for k, v in sorted(shards.items())},
            "leases": leases,
        }


# ---------------------------------------------------------------------------
# Shard worker
# ---------------------------------------------------------------------------

class _HeartbeatMonitor:
    """Executor monitor shim: every committed run renews the lease."""

    def __init__(self, queue: WorkQueue, item_id: str, worker_id: str):
        self.queue = queue
        self.item_id = item_id
        self.worker_id = worker_id
        self.runs = 0

    def begin_cell(self, workload, model, point, runs, resumed=0):
        self.runs = resumed
        self.queue.heartbeat(self.item_id, self.worker_id,
                             {"runs": self.runs, "of": runs})

    def on_run(self, record, stats=None):
        self.runs += 1
        self.queue.heartbeat(self.item_id, self.worker_id,
                             {"runs": self.runs})

    def on_stop(self, decision):
        pass

    def end_cell(self, result):
        pass

    def close(self):
        pass


def journal_key(campaign_id: str, item_id: str) -> str:
    return f"{campaign_id}/{item_id}.jsonl"


def run_worker(store: Union[ArtifactStore, PathLike], campaign_id: str,
               worker_id: Optional[str] = None,
               shard: Optional[int] = None, steal: bool = True,
               wait: bool = True, poll_interval: float = 0.1,
               monitor=None, max_items: Optional[int] = None) -> dict:
    """Drain campaign work items through a local executor.

    The worker loop: claim → execute the cell through
    :class:`CampaignExecutor` (journal resumed from any prior attempt)
    → mark done.  With ``wait=True`` the worker lingers while other
    workers hold live leases, stealing anything that goes stale — the
    self-healing path when a sibling shard dies mid-flight.  Returns a
    summary of what this worker executed.
    """
    if not isinstance(store, ArtifactStore):
        store = ArtifactStore.local(store)
    spec = CampaignSpec.load(store, campaign_id)
    queue = WorkQueue(store, campaign_id)
    worker_id = worker_id or f"worker-{os.getpid()}"
    fastforward = FastForwardConfig.from_dict(spec.fastforward)
    adaptive = None
    if spec.adaptive is not None:
        from repro.campaign.adaptive import AdaptiveConfig

        adaptive = AdaptiveConfig(**spec.adaptive)

    runner: Optional[CampaignRunner] = None
    models: Dict[str, object] = {}
    summary = {"worker": worker_id, "items": 0, "runs": 0, "stolen": 0}
    while True:
        item = queue.claim(worker_id, prefer_shard=shard, steal=steal)
        if item is None:
            if not wait or queue.all_done():
                break
            time.sleep(poll_interval)
            continue
        if shard is not None and item["shard"] != shard:
            summary["stolen"] += 1
        if runner is None:
            runner = CampaignRunner(
                make_workload(spec.benchmark, scale=spec.scale,
                              seed=spec.seed),
                seed=spec.seed, fastforward=fastforward)
        model = models.get(item["model"])
        if model is None:
            model = load_staged_model(store, campaign_id, item["model"])
            if adaptive is not None and adaptive.importance:
                # Mirror the CLI: importance sampling wraps the staged
                # model in every worker, so journal keys and weights
                # match the unsharded run exactly.
                from repro.campaign.adaptive import ImportanceModel

                model = ImportanceModel(model)
            models[item["model"]] = model
        point = OperatingPoint(
            name=item["point"]["name"],
            voltage=item["point"]["voltage"],
            temperature_c=item["point"].get("temperature_c", 25.0))
        journal_path = store.stream_path(NS_JOURNALS,
                                         journal_key(campaign_id,
                                                     item["id"]))
        config = ExecutorConfig(
            workers=int(spec.executor.get("workers", 0)),
            wall_clock_timeout=spec.executor.get("wall_clock_timeout"),
            journal_path=str(journal_path),
            resume=True,  # always: re-execution after a steal must heal
            fsync=spec.executor.get("fsync", "group"),
        )
        hb = _HeartbeatMonitor(queue, item["id"], worker_id)
        cell_monitor = hb
        if monitor is not None:
            from repro.observe.monitor import MonitorMux

            cell_monitor = MonitorMux(hb, monitor)
        with CampaignExecutor(runner, config=config,
                              monitor=cell_monitor) as executor:
            result = executor.run_cell(model, point, runs=spec.runs,
                                       adaptive=adaptive)
        queue.complete(item["id"], worker_id, summary={
            "runs": result.counts.total,
            "avm": result.avm,
            "error_ratio": result.error_ratio,
            "degraded": bool(result.stats.degraded),
            "resumed": result.stats.resumed,
            "executed": result.stats.executed,
        })
        summary["items"] += 1
        summary["runs"] += result.counts.total
        if max_items is not None and summary["items"] >= max_items:
            break
    return summary


# ---------------------------------------------------------------------------
# Journal merge
# ---------------------------------------------------------------------------

def merge_journals(paths: Sequence[PathLike], out_path: PathLike,
                   seed: int) -> dict:
    """Merge per-shard journals into one canonical campaign journal.

    The output is a genuine format-3 journal (meta line, CRC per line)
    whose canonical form equals the union of its inputs: run records
    sorted by key, then cell summaries, then stop decisions.  Within a
    file, later records supersede earlier ones (that is resume/heal
    appending); *across* files any shared run, cell or stop key is a
    :class:`MergeConflict` — two shards may never own one cell, so
    overlap means the queue partition was violated and neither record
    can be trusted.  Torn or CRC-failing lines are quarantined exactly
    as journal resume quarantines them; empty inputs merge cleanly.
    Iteration order over ``paths`` never changes the output bytes.
    """
    runs: Dict[tuple, dict] = {}
    cells: Dict[tuple, dict] = {}
    stops: Dict[tuple, dict] = {}
    owners: Dict[Tuple[str, tuple], str] = {}
    report = {"inputs": len(paths), "empty_inputs": 0, "torn_lines": 0,
              "crc_failures": 0, "harness_errors": 0,
              "runs": 0, "cells": 0, "stops": 0}

    def _claim_key(kind: str, key: tuple, source: str) -> None:
        previous = owners.setdefault((kind, key), source)
        if previous != source:
            raise MergeConflict(
                f"{kind} key {'/'.join(str(k) for k in key)} appears in "
                f"both {previous} and {source}: shard journals must "
                f"partition the campaign's cells")

    for path in sorted(Path(p) for p in paths):
        source = path.name
        try:
            if path.stat().st_size == 0:
                report["empty_inputs"] += 1
                continue
        except OSError:
            report["empty_inputs"] += 1
            continue
        payloads, strict = _parse_lines(path)
        for payload in payloads:
            if payload is None:
                report["torn_lines"] += 1
                continue
            if not _crc_ok(payload, strict=strict):
                report["crc_failures"] += 1
                continue
            kind = payload.get("type")
            if kind == "meta":
                if payload.get("seed") != seed:
                    raise MergeConflict(
                        f"{source} was journaled for seed "
                        f"{payload.get('seed')}, not {seed}")
            elif kind == "run":
                try:
                    key = (payload["workload"], payload["model"],
                           payload["point"], int(payload["run_index"]))
                except (KeyError, TypeError, ValueError):
                    report["torn_lines"] += 1
                    continue
                _claim_key("run", key, source)
                runs[key] = payload
            elif kind == "cell":
                key = (payload.get("workload"), payload.get("model"),
                       payload.get("point"))
                _claim_key("cell", key, source)
                cells[key] = payload
            elif kind == "stop":
                key = (payload.get("workload"), payload.get("model"),
                       payload.get("point"))
                _claim_key("stop", key, source)
                stops[key] = payload
            elif kind == "harness_error":
                report["harness_errors"] += 1

    from repro.campaign.journal import RunJournal

    lines = [{"type": "meta", "version": RunJournal.VERSION,
              "seed": int(seed)}]
    lines += [runs[key] for key in sorted(runs)]
    lines += [cells[key] for key in sorted(cells)]
    lines += [stops[key] for key in sorted(stops)]
    encoded = []
    for payload in lines:
        body = {k: v for k, v in payload.items() if k != "crc"}
        body["crc"] = _payload_crc(body)
        encoded.append(json.dumps(body, sort_keys=True,
                                  separators=(",", ":")))
    durable.atomic_write_bytes(Path(out_path),
                               ("\n".join(encoded) + "\n").encode(),
                               target="journal")
    report.update(runs=len(runs), cells=len(cells), stops=len(stops))
    return report


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------

class ShardCoordinator:
    """Plans, drives and merges one sharded campaign.

    ``create`` is idempotent: re-creating an existing campaign (the
    ``--resume`` path) verifies the stored spec matches and reuses the
    queue — done items stay done, in-flight journals resume.
    """

    def __init__(self, store: ArtifactStore, spec: CampaignSpec):
        self.store = store
        self.spec = spec
        self.queue = WorkQueue(store, spec.campaign_id)

    @classmethod
    def create(cls, store: ArtifactStore, spec: CampaignSpec,
               models: Sequence[object]) -> "ShardCoordinator":
        staged_names = [m.name for m in models]
        if sorted(staged_names) != sorted(spec.models):
            raise ShardError(
                f"staged models {sorted(staged_names)} do not match the "
                f"spec's {sorted(spec.models)}")
        existing = store.get(NS_CAMPAIGNS, f"{spec.campaign_id}/spec")
        if existing is not None:
            stored = CampaignSpec.from_dict(json.loads(existing.decode()))
            if stored.to_dict() != spec.to_dict():
                raise ShardError(
                    f"campaign {spec.campaign_id!r} already exists with "
                    f"a different spec; pick a new id or delete the old "
                    f"campaign to restart it")
        else:
            spec.save(store)
        for model in models:
            stage_model(store, spec.campaign_id, model)
        coordinator = cls(store, spec)
        coordinator.queue.populate(spec.items())
        return coordinator

    @classmethod
    def resume(cls, store: ArtifactStore,
               campaign_id: str) -> "ShardCoordinator":
        return cls(store, CampaignSpec.load(store, campaign_id))

    # -- execution ---------------------------------------------------------------
    def run_inline(self, steal: bool = False) -> List[dict]:
        """Drive every shard in this process, one logical worker each.

        With ``steal=False`` each worker touches only its own shard's
        items — the strict partition the differential harness compares
        against subprocess geometries.
        """
        return [
            run_worker(self.store, self.spec.campaign_id,
                       worker_id=f"inline-{shard}", shard=shard,
                       steal=steal, wait=False)
            for shard in range(self.spec.shards)
        ]

    def worker_argv(self, shard: int) -> List[str]:
        root = self.store.local_root
        return [sys.executable, "-m", "repro", "shard-worker",
                "--store", str(root),
                "--campaign", self.spec.campaign_id,
                "--shard", str(shard),
                "--worker-id", f"shard-{shard}"]

    def run_processes(self, max_restarts: int = 3,
                      poll_interval: float = 0.2,
                      env: Optional[dict] = None,
                      status_board=None,
                      stderr=None) -> dict:
        """Run one OS-process worker per shard, restarting dead ones.

        A worker that exits while undone work remains (crash, SIGKILL,
        chaos) is respawned up to ``max_restarts`` times per shard; its
        leases go stale and are stolen or resumed either way.  Feeds
        ``status_board`` (a :class:`~repro.observe.httpd.StatusBoard`)
        with aggregate shard state on every poll.
        """
        procs: Dict[int, subprocess.Popen] = {}
        restarts = {shard: 0 for shard in range(self.spec.shards)}

        def _spawn(shard: int) -> None:
            procs[shard] = subprocess.Popen(
                self.worker_argv(shard), env=env, stderr=stderr)

        for shard in range(self.spec.shards):
            _spawn(shard)
        try:
            while not self.queue.all_done():
                for shard, proc in list(procs.items()):
                    code = proc.poll()
                    if code is None or self.queue.all_done():
                        continue
                    if restarts[shard] >= max_restarts:
                        raise ShardError(
                            f"shard {shard} worker died {restarts[shard]}"
                            f" time(s) past the restart budget "
                            f"(last exit {code})")
                    restarts[shard] += 1
                    _spawn(shard)
                if status_board is not None:
                    status_board.update_shards(self.status())
                time.sleep(poll_interval)
        finally:
            for proc in procs.values():
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs.values():
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
                    proc.wait()
        if status_board is not None:
            status_board.update_shards(self.status())
        return {"restarts": dict(restarts)}

    # -- merge + status ----------------------------------------------------------
    def journal_paths(self) -> List[Path]:
        return self.store.list_streams(NS_JOURNALS,
                                       prefix=f"{self.spec.campaign_id}/")

    def merge(self, out_path: PathLike) -> dict:
        """Merge shard journals; freeze inputs + result content-addressably."""
        if not self.queue.all_done():
            status = self.queue.status()
            raise ShardError(
                f"cannot merge: {status['items'] - status['done']} "
                f"item(s) not done (run workers or --resume first)")
        paths = self.journal_paths()
        report = merge_journals(paths, out_path, seed=self.spec.seed)
        manifest = {"campaign": self.spec.campaign_id,
                    "seed": self.spec.seed, "shards": {}}
        for path in paths:
            address = self.store.archive_stream(
                NS_JOURNALS,
                f"{self.spec.campaign_id}/archive/{path.name}", path)
            manifest["shards"][path.name] = address
        manifest["merged"] = self.store.put(
            NS_JOURNALS, f"{self.spec.campaign_id}/merged",
            Path(out_path).read_bytes(), target="journal")
        self.store.put(
            NS_JOURNALS, f"{self.spec.campaign_id}/manifest",
            json.dumps(manifest, sort_keys=True, indent=2).encode())
        report["manifest"] = manifest
        return report

    def status(self) -> dict:
        status = self.queue.status()
        status["shards_total"] = self.spec.shards
        return status
