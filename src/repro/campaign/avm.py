"""Application Vulnerability Metric and energy guidance (Section V.C).

AVM (Eq. 4) aggregates the non-masked outcome probability of a campaign
into one number per (application, voltage, model).  Section V.C uses it
two ways, both implemented here:

- **Vmin selection**: the lowest characterised voltage whose AVM does not
  exceed a target (0 for strict correctness) is the application's safe
  undervolting point; dynamic power scales with V^2, giving the paper's
  "reduce from 1.1 V to 0.88 V" style savings.  The paper's 56 % figure
  for k-means folds in the frequency headroom released by the recovered
  timing guardband (energy/op ~ V^2 with the guardband-free clock); we
  report both the pure V^2 saving and the guardband-inclusive one.
- **Mitigation guidance**: with an error-prevention scheme that pays a
  per-predicted-error penalty (e.g. replay or cycle-stealing slow-down),
  AVM tells which applications can keep undervolting with the scheme on;
  the energy model charges the scheme's overhead against the V^2 gain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.campaign.outcomes import OutcomeCounts
from repro.campaign.runner import CampaignResult
from repro.circuit.liberty import OperatingPoint, TECHNOLOGY, VoltageScalingModel
from repro.utils.stats import geometric_mean


def application_vulnerability(counts: OutcomeCounts) -> float:
    """Eq. 4 on a finished campaign tally."""
    return counts.avm


def avm_divergence(results: Sequence[CampaignResult],
                   reference_model: str = "WA") -> Dict[str, float]:
    """Mean absolute AVM difference of each model vs the reference.

    The paper reports DA/IA AVM values differing from WA's by 49.8 % on
    average; this computes the same aggregate (in AVM percentage points)
    over a set of campaign cells.
    """
    by_cell: Dict[Tuple[str, str], Dict[str, float]] = {}
    for result in results:
        by_cell.setdefault((result.workload, result.point), {})[
            result.model
        ] = result.avm
    sums: Dict[str, List[float]] = {}
    for cell in by_cell.values():
        if reference_model not in cell:
            continue
        ref = cell[reference_model]
        for model, avm in cell.items():
            if model == reference_model:
                continue
            sums.setdefault(model, []).append(abs(avm - ref) * 100.0)
    return {model: sum(vals) / len(vals) for model, vals in sums.items()
            if vals}


def error_ratio_divergence(results: Sequence[CampaignResult],
                           reference_model: str = "WA",
                           floor: Optional[float] = None) -> Dict[str, float]:
    """Geometric-mean fold-change of injected ER vs the reference model.

    This is the paper's "~250x on average" aggregate (Fig. 10): per cell,
    the larger of ER_model/ER_ref and ER_ref/ER_model; zero ratios are
    floored at the campaign's detection limit (one error in the analysed
    trace) so error-free cells contribute large-but-finite factors.
    """
    by_cell: Dict[Tuple[str, str], Dict[str, float]] = {}
    for result in results:
        by_cell.setdefault((result.workload, result.point), {})[
            result.model
        ] = result.error_ratio
    folds: Dict[str, List[float]] = {}
    default_floor = floor if floor is not None else 1e-6
    for cell in by_cell.values():
        if reference_model not in cell:
            continue
        ref = max(cell[reference_model], default_floor)
        for model, ratio in cell.items():
            if model == reference_model:
                continue
            measured = max(ratio, default_floor)
            folds.setdefault(model, []).append(
                max(measured / ref, ref / measured)
            )
    return {model: geometric_mean(vals) for model, vals in folds.items()
            if vals}


@dataclass
class EnergyAnalysis:
    """Voltage/energy guidance from AVM sweeps."""

    technology: VoltageScalingModel = TECHNOLOGY
    avm_target: float = 0.0

    def safe_point(self, sweep: Sequence[Tuple[OperatingPoint, float]]
                   ) -> OperatingPoint:
        """Lowest-voltage point whose AVM is within the target.

        ``sweep`` pairs operating points with their campaign AVM; the
        nominal point (AVM 0 by construction) should be included as the
        fallback.
        """
        safe = [point for point, avm in sweep if avm <= self.avm_target]
        if not safe:
            raise ValueError("no operating point meets the AVM target")
        return min(safe, key=lambda p: p.voltage)

    def power_saving(self, point: OperatingPoint) -> float:
        """Pure dynamic-power saving of running at ``point`` (V^2 law)."""
        return 1.0 - self.technology.power_factor(point.voltage)

    def energy_saving_with_guardband(self, point: OperatingPoint) -> float:
        """Energy/op saving including the recovered timing guardband.

        Undervolting to the *actual* point of failure also recovers the
        conventional voltage guardband designers add on top (the paper's
        k-means 56 % at 0.88 V vs 36 % from V^2 alone); we model the
        guardband as the delay-factor headroom converted back to supply
        scaling of the same magnitude.
        """
        v2 = self.technology.power_factor(point.voltage)
        guardband = self.technology.delay_factor(point.voltage)
        return 1.0 - v2 / guardband

    def mitigation_energy_saving(self, point: OperatingPoint,
                                 error_ratio: float,
                                 replay_penalty: float = 30.0) -> float:
        """Energy saving with an error-prevention/replay scheme enabled.

        The scheme detects-and-replays each predicted-faulty instruction
        at a cost of ``replay_penalty`` instruction-equivalents; positive
        returns mean undervolting remains profitable despite errors —
        the basis of the paper's "up-to 20 % energy savings" claim.
        """
        if not 0.0 <= error_ratio <= 1.0:
            raise ValueError("error_ratio must be a probability")
        overhead = 1.0 + replay_penalty * error_ratio
        return 1.0 - self.technology.power_factor(point.voltage) * overhead

    def best_mitigated_point(
        self, sweep: Sequence[Tuple[OperatingPoint, float]],
        replay_penalty: float = 30.0,
    ) -> Tuple[OperatingPoint, float]:
        """Point maximising mitigated energy saving over an ER sweep."""
        best = None
        for point, error_ratio in sweep:
            saving = self.mitigation_energy_saving(
                point, error_ratio, replay_penalty
            )
            if best is None or saving > best[1]:
                best = (point, saving)
        if best is None:
            raise ValueError("empty sweep")
        return best
