"""Plain-text rendering of the paper's tables and figure series.

Every experiment driver returns structured data; these helpers print the
same rows/series the paper plots, so benches and examples can show
paper-shaped output without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.campaign.outcomes import Outcome
from repro.campaign.runner import CampaignResult


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def outcome_table(results: Sequence[CampaignResult]) -> str:
    """Fig. 9: outcome distributions per (benchmark, model, point)."""
    rows = []
    for result in sorted(results, key=lambda r: (r.workload, r.point,
                                                 r.model)):
        fractions = result.counts.fractions()
        rows.append([
            result.workload, result.point, result.model,
            f"{fractions[Outcome.MASKED]:6.1%}",
            f"{fractions[Outcome.SDC]:6.1%}",
            f"{fractions[Outcome.CRASH]:6.1%}",
            f"{fractions[Outcome.TIMEOUT]:6.1%}",
            f"{result.avm:6.1%}",
        ])
    return format_table(
        ["benchmark", "VR", "model", "Masked", "SDC", "Crash", "Timeout",
         "AVM"],
        rows,
    )


def executor_stats_table(results: Sequence[CampaignResult]) -> str:
    """Per-cell executor accounting: retries, watchdog kills, wall time."""
    rows = []
    for result in sorted(results, key=lambda r: (r.workload, r.point,
                                                 r.model)):
        stats = result.stats
        if stats is None:
            continue
        rows.append([
            result.workload, result.point, result.model,
            stats.runs, stats.executed, stats.resumed, stats.failed,
            stats.retries, stats.watchdog_kills, stats.harness_errors,
            "yes" if stats.degraded else "no",
            f"{stats.wall_time:7.2f}s",
            stats.workers if stats.workers else "serial",
        ])
    if not rows:
        return "(no executor statistics recorded)"
    return format_table(
        ["benchmark", "VR", "model", "runs", "exec", "resumed", "failed",
         "retries", "wd-kills", "harness-err", "degraded", "wall",
         "workers"],
        rows,
    )


def error_ratio_table(results: Sequence[CampaignResult],
                      reference_model: str = "WA") -> str:
    """Fig. 10: injected error ratios with fold-change vs the reference."""
    by_cell: Dict[tuple, Dict[str, float]] = {}
    for result in results:
        by_cell.setdefault((result.workload, result.point), {})[
            result.model
        ] = result.error_ratio
    rows = []
    for (workload, point), cell in sorted(by_cell.items()):
        ref = cell.get(reference_model)
        for model, ratio in sorted(cell.items()):
            fold = ""
            if ref is not None and model != reference_model:
                lo = max(min(ratio, ref), 1e-6)
                hi = max(max(ratio, ref), 1e-6)
                fold = f"{hi / lo:8.1f}x"
            rows.append([workload, point, model, f"{ratio:.3e}", fold])
    return format_table(
        ["benchmark", "VR", "model", "error ratio", f"vs {reference_model}"],
        rows,
    )


def ber_series(label: str, ber: np.ndarray, width: int = 64,
               mantissa_bits: int = 52, exponent_bits: int = 11) -> str:
    """One Fig. 6/7/8 panel: per-bit BER, MSB-first with S/E/M regions."""
    parts = [f"{label}:"]
    order = range(width - 1, -1, -1)
    def region(bit: int) -> str:
        if bit == width - 1:
            return "S"
        if bit >= mantissa_bits:
            return "E"
        return "M"
    # Group and summarise: print non-zero bits individually, zeros elided.
    nonzero = [(bit, ber[bit]) for bit in order if ber[bit] > 0]
    if not nonzero:
        parts.append("  (all bit positions error-free)")
        return "\n".join(parts)
    for bit, value in nonzero:
        bar = "#" * max(1, int(round(40 * value / max(b for _, b in nonzero))))
        parts.append(f"  bit {bit:2d} [{region(bit)}]  {value:.3e}  {bar}")
    return "\n".join(parts)


def feature_matrix(models: Iterable) -> str:
    """Table I: the error-model feature overview."""
    rows = []
    for model in models:
        row = model.feature_row()
        rows.append([
            row["model"], row["injection technique"],
            "yes" if row["voltage aware"] else "no",
            "yes" if row["instruction aware"] else "no",
            "yes" if row["workload aware"] else "no",
            "yes" if row["microarchitecture aware"] else "no",
        ])
    return format_table(
        ["model", "injection technique", "voltage", "instruction",
         "workload", "microarchitecture"],
        rows,
    )
