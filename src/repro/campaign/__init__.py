"""Injection-campaign harness: the application-evaluation phase (Fig. 2).

- :mod:`repro.campaign.outcomes` — the four-way outcome classification,
- :mod:`repro.campaign.runner` — golden runs, per-run injection, and
  full campaigns with statistically sized run counts,
- :mod:`repro.campaign.avm` — the Application Vulnerability Metric and
  the voltage/energy guidance analysis of Section V.C,
- :mod:`repro.campaign.report` — plain-text renderings of every table
  and figure series.
"""

from repro.campaign.outcomes import Outcome, OutcomeCounts
from repro.campaign.runner import CampaignResult, CampaignRunner, GoldenRun
from repro.campaign.avm import (
    EnergyAnalysis,
    application_vulnerability,
    avm_divergence,
)

__all__ = [
    "Outcome",
    "OutcomeCounts",
    "CampaignResult",
    "CampaignRunner",
    "GoldenRun",
    "EnergyAnalysis",
    "application_vulnerability",
    "avm_divergence",
]
