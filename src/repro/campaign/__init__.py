"""Injection-campaign harness: the application-evaluation phase (Fig. 2).

- :mod:`repro.campaign.outcomes` — the four-way outcome classification,
- :mod:`repro.campaign.runner` — golden runs, the hardened per-run
  classification boundary, and campaign cells,
- :mod:`repro.campaign.executor` — the fault-tolerant execution engine:
  isolated worker pools, wall-clock watchdogs, bounded retries and
  degraded-cell accounting,
- :mod:`repro.campaign.journal` — append-only resumable run journals
  keyed by each run's deterministic RNG stream,
- :mod:`repro.campaign.avm` — the Application Vulnerability Metric and
  the voltage/energy guidance analysis of Section V.C,
- :mod:`repro.campaign.report` — plain-text renderings of every table
  and figure series.
"""

from repro.campaign.outcomes import Outcome, OutcomeCounts
from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    GoldenRun,
    RunExecution,
    WatchdogTimeout,
)
from repro.campaign.executor import (
    CampaignExecutor,
    CellStats,
    ExecutorConfig,
)
from repro.campaign.journal import RunJournal, RunRecord, run_key
from repro.campaign.avm import (
    EnergyAnalysis,
    application_vulnerability,
    avm_divergence,
)

__all__ = [
    "Outcome",
    "OutcomeCounts",
    "CampaignResult",
    "CampaignRunner",
    "GoldenRun",
    "RunExecution",
    "WatchdogTimeout",
    "CampaignExecutor",
    "CellStats",
    "ExecutorConfig",
    "RunJournal",
    "RunRecord",
    "run_key",
    "EnergyAnalysis",
    "application_vulnerability",
    "avm_divergence",
]
