"""Injection-outcome classification (Section IV.A).

Every injection run ends in exactly one of the paper's four categories:

- **Masked** — execution completed and the output is identical to the
  error-free run's (includes errors squashed or dead in the pipeline),
- **SDC** — execution completed normally but the output differs, with no
  observable indication (silent data corruption),
- **Crash** — the run was terminated by an unrecoverable event (process
  crash, FP exception, memory fault),
- **Timeout** — the run exceeded twice the error-free execution budget
  (deadlock/livelock proxy) and was externally stopped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable


class Outcome(enum.Enum):
    MASKED = "Masked"
    SDC = "SDC"
    CRASH = "Crash"
    TIMEOUT = "Timeout"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class OutcomeCounts:
    """Tally of outcomes over a campaign."""

    counts: Dict[Outcome, int] = field(
        default_factory=lambda: {outcome: 0 for outcome in Outcome}
    )

    def record(self, outcome: Outcome) -> None:
        self.counts[outcome] += 1

    def extend(self, outcomes: Iterable[Outcome]) -> None:
        for outcome in outcomes:
            self.record(outcome)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, outcome: Outcome) -> float:
        total = self.total
        return self.counts[outcome] / total if total else 0.0

    def fractions(self) -> Dict[Outcome, float]:
        return {outcome: self.fraction(outcome) for outcome in Outcome}

    @property
    def non_masked(self) -> int:
        return (self.counts[Outcome.SDC] + self.counts[Outcome.CRASH]
                + self.counts[Outcome.TIMEOUT])

    @property
    def avm(self) -> float:
        """Eq. 4: AVM = (#SDC + #Crash + #Timeout) / total injected."""
        total = self.total
        return self.non_masked / total if total else 0.0

    def merge(self, other: "OutcomeCounts") -> "OutcomeCounts":
        merged = OutcomeCounts()
        for outcome in Outcome:
            merged.counts[outcome] = (self.counts[outcome]
                                      + other.counts[outcome])
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{o.value}={self.counts[o]}" for o in Outcome)
        return f"OutcomeCounts({parts})"
