"""Adaptive (sequential) campaign sampling: stop when the CI says so.

The paper sizes every (benchmark, voltage, model) cell at 1068 runs —
the fixed-N budget for a ±3 % Wilson margin at 95 % confidence — even
when a cell's AVM converges after a few hundred runs.  This module
inverts the CI-trajectory sensor built by the control plane into a
*stopping rule*:

- **Anytime-valid interval** (:func:`anytime_wilson_ci`): naively
  peeking at a running 95 % Wilson interval after every run inflates the
  error rate far beyond 5 % (each look is another chance to stop on a
  fluctuation).  The sampler therefore only evaluates the rule on a
  predeclared geometric *look schedule* (:func:`look_schedule`) and
  Bonferroni-corrects the confidence across those looks, so the
  probability that the true AVM ever escapes the reported interval —
  at *any* look — stays below ``1 - confidence``.  Conservative but
  honest; see DESIGN.md §14 for the caveat.
- **Sequential stopping** (:class:`CellSampler`): a cell stops at the
  first look whose corrected interval half-width reaches ``ci_target``
  (never below the ``min_runs`` floor), or exhausts the fixed-N budget.
  The decision is a pure function of the outcome sequence *in run-index
  order*, so it is identical for any worker count, fast-forward setting
  or resume point.
- **Dynamic run streams** (:class:`AdaptiveCellStream`): the executor
  consumes run indices 0, 1, 2, … and commits results strictly in index
  order; because every run draws exclusively from its own RNG substream
  (keyed by run index), any prefix of an adaptive cell is bit-identical
  to the fixed-N campaign truncated at the same index.
- **Budget reallocation** (:func:`run_adaptive_cells`): runs saved by
  early-stopping cells accumulate in a pool that a max-CI-width
  priority queue redistributes to cells that exhausted their budget
  without converging.
- **Importance sampling** (:class:`ImportanceModel`): optionally biases
  WA victim placement toward events whose bitmasks touch high-BER bits
  (most uniform placements are Masked and uninformative), with
  Horvitz–Thompson reweighting so the weighted AVM stays unbiased; a
  self-normalized estimator is exposed alongside.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.circuit.liberty import OperatingPoint
from repro.errors.base import ErrorModel, InjectionPlan, WorkloadProfile
from repro.observe.stats import wilson_ci
from repro.utils.rng import RngStream

__all__ = [
    "RULE_BUDGET",
    "RULE_TARGET",
    "AdaptiveConfig",
    "AdaptiveReport",
    "CellSampler",
    "AdaptiveCellStream",
    "ImportanceModel",
    "StopDecision",
    "anytime_wilson_ci",
    "look_schedule",
    "run_adaptive_cells",
    "weighted_estimates",
]

#: Stop-rule identifiers carried in journals, /status and trajectories.
RULE_TARGET = "ci-target"    # interval half-width reached the target
RULE_BUDGET = "budget"       # fixed-N budget exhausted before converging


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the sequential stopping rule.

    ``ci_target`` is the half-width (the paper's ±margin) at which a
    cell stops; ``min_runs`` is the floor below which no stop decision
    is ever taken; ``growth`` spaces the geometric look schedule (looks
    at ``min_runs``, ``min_runs·growth``, … up to the budget);
    ``importance`` biases WA victim placement (see
    :class:`ImportanceModel`); ``reallocate`` redistributes saved runs
    to unconverged cells; ``max_grants`` bounds reallocation rounds.
    """

    ci_target: float = 0.03
    confidence: float = 0.95
    min_runs: int = 100
    growth: float = 1.25
    importance: bool = False
    reallocate: bool = True
    max_grants: int = 8

    def __post_init__(self):
        if not 0.0 < self.ci_target < 0.5:
            raise ValueError(f"ci_target must be in (0, 0.5), "
                             f"got {self.ci_target}")
        if not 0.5 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0.5, 1), "
                             f"got {self.confidence}")
        if self.min_runs < 1:
            raise ValueError(f"min_runs must be >= 1, got {self.min_runs}")
        if self.growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {self.growth}")


def look_schedule(min_runs: int, budget: int,
                  growth: float = 1.25) -> Tuple[int, ...]:
    """The predeclared run counts at which the stop rule is evaluated.

    Geometric from ``min_runs`` with ratio ``growth``, always including
    the ``budget`` itself (the final, forced look).  A sparse schedule
    keeps the Bonferroni correction mild: K looks cost a factor
    ``1/K`` on the per-look alpha instead of ``1/budget``.
    """
    budget = int(budget)
    min_runs = int(min_runs)
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    if min_runs >= budget:
        return (budget,)
    looks: List[int] = []
    n = min_runs
    while n < budget:
        looks.append(n)
        n = max(n + 1, int(math.ceil(n * growth)))
    looks.append(budget)
    return tuple(looks)


def anytime_wilson_ci(successes: int, trials: int,
                      confidence: float = 0.95,
                      looks: int = 1) -> Tuple[float, float]:
    """Wilson interval corrected for ``looks`` predeclared peeks.

    Splits the error budget ``alpha = 1 - confidence`` evenly across
    the looks (union bound): each individual interval is evaluated at
    ``1 - alpha/looks``, so the chance the true proportion escapes the
    interval at *any* look is at most ``alpha``.  With ``looks=1`` this
    is exactly the plain Wilson interval.
    """
    looks = max(1, int(looks))
    alpha = 1.0 - confidence
    return wilson_ci(successes, trials, 1.0 - alpha / looks)


@dataclass(frozen=True)
class StopDecision:
    """Why, and with what evidence, a cell stopped.

    ``n`` counts the classified runs consumed when the decision fired
    (in run-index order); ``ci_lo``/``ci_hi`` is the anytime-valid
    interval at that look; ``looks`` the size of the Bonferroni
    schedule the interval was corrected for.
    """

    rule: str
    n: int
    budget: int
    non_masked: int
    avm: float
    ci_lo: float
    ci_hi: float
    target: float
    confidence: float
    looks: int

    @property
    def half_width(self) -> float:
        return (self.ci_hi - self.ci_lo) / 2.0

    @property
    def runs_saved(self) -> int:
        return max(0, self.budget - self.n)

    @property
    def converged(self) -> bool:
        return self.half_width <= self.target + 1e-12

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule, "n": self.n, "budget": self.budget,
            "non_masked": self.non_masked, "avm": self.avm,
            "ci_lo": self.ci_lo, "ci_hi": self.ci_hi,
            "target": self.target, "confidence": self.confidence,
            "looks": self.looks,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StopDecision":
        return cls(
            rule=str(data["rule"]), n=int(data["n"]),
            budget=int(data["budget"]),
            non_masked=int(data["non_masked"]), avm=float(data["avm"]),
            ci_lo=float(data["ci_lo"]), ci_hi=float(data["ci_hi"]),
            target=float(data["target"]),
            confidence=float(data["confidence"]),
            looks=int(data["looks"]),
        )


class CellSampler:
    """Sequential stop rule over one cell's ordered outcome stream.

    Feed classified runs in run-index order via :meth:`observe`; the
    first call that triggers a look whose corrected interval is tight
    enough (or exhausts the budget) returns the :class:`StopDecision`.
    The tracked half-width envelope (``widths``) is the running minimum
    over looks, so it is monotone non-increasing by construction — the
    invariant the property suite pins.
    """

    def __init__(self, config: AdaptiveConfig, budget: int):
        self.config = config
        self.budget = int(budget)
        self.looks = look_schedule(config.min_runs, self.budget,
                                   config.growth)
        self._look_set = frozenset(self.looks)
        self.n = 0
        self.non_masked = 0
        self.widths: List[float] = []   # half-width envelope, per look
        self.decision: Optional[StopDecision] = None

    def interval(self) -> Tuple[float, float]:
        """The anytime-valid interval at the current sample size."""
        return anytime_wilson_ci(self.non_masked, self.n,
                                 self.config.confidence, len(self.looks))

    def observe(self, non_masked: bool) -> Optional[StopDecision]:
        """Consume one classified run; returns the decision when made."""
        if self.decision is not None:
            return self.decision
        self.n += 1
        if non_masked:
            self.non_masked += 1
        if self.n not in self._look_set:
            return None
        lo, hi = self.interval()
        half = (hi - lo) / 2.0
        envelope = min(half, self.widths[-1]) if self.widths else half
        self.widths.append(envelope)
        rule = None
        if envelope <= self.config.ci_target + 1e-12:
            rule = RULE_TARGET
        elif self.n >= self.budget:
            rule = RULE_BUDGET
        if rule is None:
            return None
        self.decision = StopDecision(
            rule=rule, n=self.n, budget=self.budget,
            non_masked=self.non_masked, avm=self.non_masked / self.n,
            ci_lo=lo, ci_hi=hi, target=self.config.ci_target,
            confidence=self.config.confidence, looks=len(self.looks),
        )
        return self.decision


class AdaptiveCellStream:
    """A cell as a dynamic run stream with deterministic ordered commit.

    The executor *reserves* fresh run indices (0, 1, 2, … up to the
    budget) and *delivers* classified records as they complete — in any
    order, from any worker.  The stream buffers out-of-order arrivals
    and releases records for commit strictly in run-index order,
    feeding each one to the :class:`CellSampler` as it is released.
    The stop decision is therefore a pure function of the ordered
    outcome prefix: identical for 1 or N workers, with or without
    fast-forward, interrupted or not.

    ``prior`` records (journal-resumed or cached from an earlier
    adaptive pass) replay through the sampler at construction without
    being re-committed; a resumed cell that already contains its stop
    prefix reproduces the same decision without executing anything.
    Results delivered for indices at or past the stop point are
    *dropped* — never committed, never journaled — so the journal of an
    adaptive cell is exactly the fixed-N journal truncated at the stop.
    """

    def __init__(self, config: AdaptiveConfig, budget: int,
                 prior: Optional[Dict[int, Any]] = None):
        self.sampler = CellSampler(config, budget)
        self.budget = int(budget)
        self._prior = dict(prior or {})
        self._buffer: Dict[int, Tuple[Any, Any]] = {}
        self._abandoned: set = set()
        self._frontier = 0            # next index to consume in order
        self._next = 0                # next fresh index to reserve
        self._outstanding: set = set()
        self.consumed: List[int] = []  # indices counted, in order
        self.discarded = 0            # speculative results dropped at stop
        self.backlog = self.budget - sum(
            1 for idx in self._prior if 0 <= idx < self.budget)
        for idx, record in self._prior.items():
            if 0 <= idx < self.budget:
                self._buffer[idx] = (record, None)
        self._advance()

    @property
    def decision(self) -> Optional[StopDecision]:
        return self.sampler.decision

    @property
    def stopped(self) -> bool:
        return self.sampler.decision is not None

    @property
    def exhausted(self) -> bool:
        """No more fresh indices to hand out."""
        return self.stopped or self._next >= self.budget

    @property
    def abandoned(self) -> int:
        """Indices permanently skipped after exhausted retries."""
        return len(self._abandoned)

    def reserve(self) -> Optional[int]:
        """Next fresh run index to execute, or None."""
        while not self.stopped and self._next < self.budget:
            idx = self._next
            self._next += 1
            if idx in self._prior:
                continue  # already classified by a previous pass
            self._outstanding.add(idx)
            return idx
        return None

    def deliver(self, run_index: int, record: Any,
                meta: Any = None) -> List[Tuple[Any, Any]]:
        """Accept one completed run; return records now safe to commit.

        Returns ``(record, meta)`` pairs in run-index order — possibly
        empty (arrival out of order), possibly several (a gap filled).
        Results landing after the stop decision are dropped.
        """
        self._outstanding.discard(run_index)
        if self.stopped or not 0 <= run_index < self.budget:
            self.discarded += 1
            return []
        self._buffer[run_index] = (record, meta)
        return self._advance()

    def abandon(self, run_index: int) -> List[Tuple[Any, Any]]:
        """A run permanently failed: skip its index in the order.

        The frontier steps over the hole (the sampler never sees it), so
        progress continues deterministically given the same failure set.
        """
        self._outstanding.discard(run_index)
        if self.stopped:
            return []
        self._abandoned.add(run_index)
        return self._advance()

    def _advance(self) -> List[Tuple[Any, Any]]:
        released: List[Tuple[Any, Any]] = []
        while not self.stopped and self._frontier < self.budget:
            idx = self._frontier
            if idx in self._abandoned:
                self._frontier += 1
                continue
            if idx not in self._buffer:
                break
            record, meta = self._buffer.pop(idx)
            self._frontier += 1
            self.consumed.append(idx)
            if idx not in self._prior:
                released.append((record, meta))
            outcome = getattr(record, "outcome", str(record))
            self.sampler.observe(outcome != "Masked")
        if self.stopped:
            self.discarded += len(self._buffer)
            self._buffer.clear()
        return released


# -- campaign-level budget reallocation ------------------------------------------


@dataclass
class AdaptiveReport:
    """Campaign-wide accounting of the sequential rule.

    One entry per cell (post-reallocation state), plus pool totals; the
    bench adaptive block, the CLI summary and EXPERIMENTS.md tables all
    render from this.
    """

    budget_per_cell: int
    cells: List[Dict[str, Any]] = field(default_factory=list)
    grants: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def budget_total(self) -> int:
        return self.budget_per_cell * len(self.cells)

    @property
    def executed_total(self) -> int:
        return sum(c["n"] for c in self.cells)

    @property
    def saved_total(self) -> int:
        return max(0, self.budget_total - self.executed_total)

    @property
    def savings_fraction(self) -> float:
        total = self.budget_total
        return self.saved_total / total if total else 0.0

    @property
    def stopped_early(self) -> int:
        return sum(1 for c in self.cells if c["rule"] == RULE_TARGET)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "budget_per_cell": self.budget_per_cell,
            "budget_total": self.budget_total,
            "executed_total": self.executed_total,
            "saved_total": self.saved_total,
            "savings_fraction": self.savings_fraction,
            "stopped_early": self.stopped_early,
            "cells": [dict(c) for c in self.cells],
            "grants": [dict(g) for g in self.grants],
        }

    def render(self) -> str:
        """Plain-text summary for the CLI."""
        lines = [
            f"Adaptive sampling: {self.executed_total}/{self.budget_total} "
            f"runs ({self.savings_fraction:.0%} saved), "
            f"{self.stopped_early}/{len(self.cells)} cells converged early"
        ]
        for cell in self.cells:
            lines.append(
                f"  {cell['cell']:<30s} {cell['rule']:>9s} at n="
                f"{cell['n']:<5d} AVM in [{cell['ci_lo']:.3f}, "
                f"{cell['ci_hi']:.3f}] (saved {cell['saved']})"
            )
        for grant in self.grants:
            lines.append(
                f"  regrant {grant['cell']}: +{grant['granted']} runs "
                f"(half-width {grant['half_width']:.3f} > "
                f"{grant['target']:.3f})"
            )
        return "\n".join(lines)


def _runs_needed(n: int, half_width: float, target: float) -> int:
    """Rough total sample size to shrink ``half_width`` to ``target``.

    Interval width scales as ``1/√n``, so reaching the target from the
    *observed* (Bonferroni-corrected) half-width needs roughly
    ``n·(half/target)²`` total runs.  Scaling from the observed width —
    rather than a fresh normal-approximation formula — keeps the
    estimate consistent with the corrected interval the stop rule
    actually evaluates.  Only used to size reallocation grants, never
    for the stop decision itself.
    """
    if half_width <= target:
        return n
    ratio = half_width / target
    return max(n + 1, int(math.ceil(n * ratio * ratio)))


def run_adaptive_cells(cells: Sequence[Tuple[Any, ErrorModel,
                                             OperatingPoint]],
                       config: AdaptiveConfig,
                       runs: int) -> Tuple[List[Any], AdaptiveReport]:
    """Run campaign cells adaptively, reallocating saved budget.

    ``cells`` is a sequence of ``(executor, model, point)`` triples (the
    executors may differ per benchmark).  Pass 1 runs every cell with
    the per-cell fixed-N ``runs`` budget as its ceiling; runs saved by
    early stoppers accumulate in a pool.  A max-CI-width priority queue
    then regrants the pool to unconverged cells (those that exhausted
    their budget above the target width), re-entering ``run_cell`` with
    a raised ceiling — resumed from the executor's adaptive cache or
    journal, so only the extension executes.  Returns the (final)
    results in input order plus the :class:`AdaptiveReport`.
    """
    results: List[Any] = []
    report = AdaptiveReport(budget_per_cell=int(runs))
    pool = 0
    widest: List[Tuple[float, int]] = []  # (-half_width, cell index)
    budgets: Dict[int, int] = {}

    def _summarise(index: int, result: Any) -> None:
        stats = result.stats
        decision = getattr(stats, "stop", None) if stats else None
        entry = {
            "cell": f"{result.workload}/{result.model}/{result.point}",
            "rule": decision.rule if decision else RULE_BUDGET,
            "n": decision.n if decision else result.counts.total,
            "budget": budgets[index],
            "saved": max(0, int(runs) - (decision.n if decision
                                         else result.counts.total)),
            "avm": decision.avm if decision else result.avm,
            "ci_lo": decision.ci_lo if decision else 0.0,
            "ci_hi": decision.ci_hi if decision else 1.0,
        }
        if index < len(report.cells):
            report.cells[index] = entry
        else:
            report.cells.append(entry)

    for index, (executor, model, point) in enumerate(cells):
        budgets[index] = int(runs)
        result = executor.run_cell(model, point, runs=runs,
                                   adaptive=config)
        results.append(result)
        _summarise(index, result)
        decision = (getattr(result.stats, "stop", None)
                    if result.stats else None)
        if decision is None:
            continue
        if decision.converged:
            pool += decision.runs_saved
        elif config.reallocate:
            heapq.heappush(widest, (-decision.half_width, index))

    grants = 0
    while pool > 0 and widest and grants < config.max_grants:
        neg_width, index = heapq.heappop(widest)
        executor, model, point = cells[index]
        previous = results[index]
        decision = (getattr(previous.stats, "stop", None)
                    if previous.stats else None)
        n_now = decision.n if decision else previous.counts.total
        grant = min(pool, max(1, _runs_needed(n_now, -neg_width,
                                              config.ci_target) - n_now))
        pool -= grant
        budgets[index] += grant
        report.grants.append({
            "cell": report.cells[index]["cell"], "granted": grant,
            "half_width": -neg_width, "target": config.ci_target,
        })
        result = executor.run_cell(model, point, runs=budgets[index],
                                   adaptive=config)
        results[index] = result
        _summarise(index, result)
        grants += 1
        decision = (getattr(result.stats, "stop", None)
                    if result.stats else None)
        if decision is not None and not decision.converged and pool > 0:
            heapq.heappush(widest, (-decision.half_width, index))
    return results, report


# -- importance sampling -----------------------------------------------------------


def _popcount(mask: int) -> int:
    return bin(int(mask)).count("1")


class ImportanceModel(ErrorModel):
    """Importance-sampled victim placement over a WA-style model.

    The base WA model picks uniformly from the faulty population —
    most picks are Masked and tell us little.  This wrapper samples
    events proportionally to a positive score built from the timing
    model's per-op/per-bit error probabilities (each event scores
    ``1 + Σ_{b∈bitmask} ber[b]/mean(ber)``, falling back to the popcount
    when no BER profile exists), then attaches the Horvitz–Thompson
    weight ``w = p_uniform / q_proposal`` to the plan so the weighted
    AVM estimators stay unbiased: ``E_q[w·X] = E_uniform[X]``.

    The model gets its own name (``WA-IS`` for a ``WA`` base) because
    the RNG stream key includes the model name: importance sampling is
    a *different* run stream by construction and must never alias the
    uniform one in journals or caches.
    """

    injection_technique = "statistical (importance-sampled)"
    instruction_aware = True
    workload_aware = True
    microarchitecture_aware = True

    def __init__(self, base, suffix: str = "-IS"):
        for attr in ("faults", "_point_faults", "faulty_population",
                     "_emit_burst"):
            if not hasattr(base, attr):
                raise TypeError(
                    f"ImportanceModel needs a WA-style base with "
                    f"trace faults; {type(base).__name__} lacks {attr!r}")
        self.base = base
        self.name = f"{base.name}{suffix}"
        self.provenance = base.provenance
        self._proposals: Dict[str, Tuple[list, list, list]] = {}

    def error_ratio(self, profile: WorkloadProfile,
                    point: OperatingPoint) -> float:
        return self.base.error_ratio(profile, point)

    def faulty_population(self, point: OperatingPoint) -> int:
        return self.base.faulty_population(point)

    def proposal(self, point: OperatingPoint):
        """The proposal distribution at a point.

        Returns ``(events, q, w)`` where ``events`` are ``(op, local)``
        pairs in the base model's enumeration order, ``q`` the proposal
        probabilities (sum to 1) and ``w`` the aligned HT weights
        (``Σ qᵢ·wᵢ == 1`` — the unbiasedness identity the property
        suite checks).
        """
        cached = self._proposals.get(point.name)
        if cached is not None:
            return cached
        faults = self.base._point_faults(point)
        events: List[Tuple[Any, int]] = []
        scores: List[float] = []
        for op, tf in sorted(faults.items(), key=lambda kv: kv[0].value):
            bit_w = None
            if tf.ber is not None:
                ber = [float(b) for b in tf.ber]
                positive = [b for b in ber if b > 0]
                if positive:
                    mean = sum(positive) / len(positive)
                    bit_w = [b / mean for b in ber]
            for local in range(tf.count):
                mask = int(tf.bitmasks[local])
                if bit_w is None:
                    score = 1.0 + float(_popcount(mask))
                else:
                    score = 1.0 + sum(
                        bit_w[b] for b in range(len(bit_w))
                        if mask >> b & 1)
                events.append((op, local))
                scores.append(score)
        total = sum(scores)
        population = len(events)
        q = [s / total for s in scores]
        w = [(1.0 / population) / qi for qi in q]
        self._proposals[point.name] = (events, q, w)
        return events, q, w

    def plan(self, profile: WorkloadProfile, point: OperatingPoint,
             rng: RngStream) -> InjectionPlan:
        plan = InjectionPlan(model=self.name, point=point.name)
        if self.base.faulty_population(point) == 0:
            return plan
        events, q, w = self.proposal(point)
        u = float(rng.random())
        acc = 0.0
        chosen = len(events) - 1
        for i, qi in enumerate(q):
            acc += qi
            if u <= acc:
                chosen = i
                break
        op, local = events[chosen]
        tf = self.base._point_faults(point)[op]
        self.base._emit_burst(plan, tf, local)
        plan.weight = w[chosen]
        return plan

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ImportanceModel({self.base!r})"


def weighted_estimates(records) -> Dict[str, float]:
    """HT and self-normalized AVM estimators over weighted run records.

    ``avm_ht = Σ wᵢ·1[non-masked] / n`` is unbiased for the uniform AVM
    under the importance proposal; ``avm_sn`` trades a small bias for
    much lower variance when weights are skewed.  For uniform campaigns
    (all weights 1.0) both collapse to the plain AVM.
    """
    n = 0
    weight_sum = 0.0
    weighted_nm = 0.0
    for record in records:
        n += 1
        weight = float(getattr(record, "weight", 1.0))
        weight_sum += weight
        if getattr(record, "outcome", str(record)) != "Masked":
            weighted_nm += weight
    return {
        "runs": n,
        "weight_sum": weight_sum,
        "avm_ht": weighted_nm / n if n else 0.0,
        "avm_sn": weighted_nm / weight_sum if weight_sum else 0.0,
    }
