"""Append-only run journals: checkpoint/resume for injection campaigns.

Every injection run is keyed by the *name of the RNG stream that drives
it* — ``{workload}/{model}/{point}/{run_index}`` under the campaign root
seed.  Because every stochastic decision of a run (plan, placement,
masking) draws exclusively from that stream, the key fully determines the
run's outcome: a journal line *is* the run, and replaying a journal into
an :class:`~repro.campaign.outcomes.OutcomeCounts` is bit-identical to
re-executing the runs it records.  That is the executor's determinism
contract, and what makes a killed campaign resumable.

The journal is a JSONL file written one line per event, flushed per line
so a SIGKILL loses at most the line being written (a truncated tail line
is tolerated on load).  Line types:

- ``meta``          — journal version + campaign root seed (first line),
- ``run``           — one classified injection run (guest outcome),
- ``harness_error`` — a harness-side failure (exception *outside* the
  guest boundary), kept distinct from guest outcomes and never counted,
- ``cell``          — summary written when a campaign cell completes.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union


def run_key(workload: str, model: str, point: str, run_index: int) -> str:
    """The journal key of one run == the name of its RNG stream."""
    return f"{workload}/{model}/{point}/{run_index}"


class JournalMismatch(ValueError):
    """The journal on disk belongs to a different campaign seed."""


@dataclass
class RunRecord:
    """One classified injection run, as journaled.

    ``outcome`` is the :class:`~repro.campaign.outcomes.Outcome` value
    string; ``unexpected`` carries the repr of a guest exception that was
    not in ``CRASH_EXCEPTIONS`` (classified Crash, but kept visible).
    """

    workload: str
    model: str
    point: str
    run_index: int
    outcome: str
    injected: bool = True
    uarch_masked: int = 0
    watchdog: bool = False
    unexpected: Optional[str] = None
    wall_ms: float = 0.0
    retries: int = 0

    @property
    def key(self) -> str:
        return run_key(self.workload, self.model, self.point,
                       self.run_index)

    @property
    def cell(self) -> Tuple[str, str, str]:
        return (self.workload, self.model, self.point)


class RunJournal:
    """Append-only JSONL journal of a campaign's runs.

    Open with ``resume=True`` to load existing records and append after
    them; with ``resume=False`` (the default) an existing file is
    truncated and the campaign starts clean.
    """

    VERSION = 1

    def __init__(self, path: Union[str, Path], seed: int,
                 resume: bool = False):
        self.path = Path(path)
        self.seed = int(seed)
        self._runs: Dict[Tuple[str, str, str], Dict[int, RunRecord]] = {}
        self._harness_errors: List[dict] = []
        self._cells: List[dict] = []
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing = resume and self.path.exists() and (
            self.path.stat().st_size > 0
        )
        if existing:
            self._load()
            self._fh = open(self.path, "a", encoding="utf-8")
        else:
            self._fh = open(self.path, "w", encoding="utf-8")
            self._write({"type": "meta", "version": self.VERSION,
                         "seed": self.seed})

    @classmethod
    def open(cls, path: Union[str, Path], seed: int,
             resume: bool = False) -> "RunJournal":
        return cls(path, seed, resume=resume)

    # -- writing ---------------------------------------------------------------
    def _write(self, payload: dict) -> None:
        self._fh.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self._fh.flush()

    def record_run(self, record: RunRecord) -> None:
        payload = {"type": "run", "seed": self.seed}
        payload.update(asdict(record))
        self._write(payload)
        self._runs.setdefault(record.cell, {})[record.run_index] = record

    def record_harness_error(self, key: str, attempt: int,
                             error: str) -> None:
        payload = {"type": "harness_error", "key": key,
                   "attempt": attempt, "error": error}
        self._write(payload)
        self._harness_errors.append(payload)

    def record_cell(self, result) -> None:
        """Summarise a completed cell (a ``CampaignResult``-shaped object)."""
        counts = {o.value: n for o, n in result.counts.counts.items()}
        payload = {
            "type": "cell", "workload": result.workload,
            "model": result.model, "point": result.point,
            "runs": result.counts.total, "counts": counts,
            "error_ratio": result.error_ratio, "avm": result.avm,
            "degraded": bool(getattr(result, "degraded", False)),
        }
        self._write(payload)
        self._cells.append(payload)

    # -- reading ---------------------------------------------------------------
    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    payload = json.loads(raw)
                except json.JSONDecodeError:
                    # A kill mid-write truncates at most the final line.
                    continue
                kind = payload.get("type")
                if kind == "meta":
                    if payload.get("seed") != self.seed:
                        raise JournalMismatch(
                            f"journal {self.path} was written for seed "
                            f"{payload.get('seed')}, not {self.seed}"
                        )
                elif kind == "run":
                    record = RunRecord(**{
                        k: payload[k] for k in (
                            "workload", "model", "point", "run_index",
                            "outcome", "injected", "uarch_masked",
                            "watchdog", "unexpected", "wall_ms", "retries",
                        ) if k in payload
                    })
                    self._runs.setdefault(record.cell, {})[
                        record.run_index
                    ] = record
                elif kind == "harness_error":
                    self._harness_errors.append(payload)
                elif kind == "cell":
                    self._cells.append(payload)

    def completed_runs(self, workload: str, model: str,
                       point: str) -> Dict[int, RunRecord]:
        """Journaled runs of one cell, keyed by run index."""
        return dict(self._runs.get((workload, model, point), {}))

    def harness_errors(self, key_prefix: str = "") -> List[dict]:
        return [e for e in self._harness_errors
                if e["key"].startswith(key_prefix)]

    @property
    def cells(self) -> List[dict]:
        return list(self._cells)

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        total = sum(len(v) for v in self._runs.values())
        return (f"RunJournal(path={str(self.path)!r}, seed={self.seed}, "
                f"runs={total})")
