"""Append-only run journals: checkpoint/resume for injection campaigns.

Every injection run is keyed by the *name of the RNG stream that drives
it* — ``{workload}/{model}/{point}/{run_index}`` under the campaign root
seed.  Because every stochastic decision of a run (plan, placement,
masking) draws exclusively from that stream, the key fully determines the
run's outcome: a journal line *is* the run, and replaying a journal into
an :class:`~repro.campaign.outcomes.OutcomeCounts` is bit-identical to
re-executing the runs it records.  That is the executor's determinism
contract, and what makes a killed campaign resumable.

The journal is a JSONL file written one line per event.  Line types:

- ``meta``          — journal version + campaign root seed (first line),
- ``run``           — one classified injection run (guest outcome),
- ``harness_error`` — a harness-side failure (exception *outside* the
  guest boundary), kept distinct from guest outcomes and never counted,
- ``cell``          — summary written when a campaign cell completes,
- ``stop``          — the stop-decision provenance of an adaptively
  sampled cell (format version 3): rule, n-at-stop, the anytime-valid
  interval and its target, so a resumed campaign can prove it
  reproduced the identical decision.

Durability (journal format version 2):

- every line carries a CRC32 of its canonical payload, so silent
  corruption (bit-rot, torn appends) is *detected* on load — a bad line
  is quarantined (skipped and counted), never replayed as data, and the
  executor simply re-runs the missing index;
- a configurable fsync policy bounds what a power cut can lose:
  ``"group"`` (the default) fsyncs every ``fsync_every`` records or
  ``fsync_interval`` seconds, ``"always"`` fsyncs per record, and
  ``"close"`` reproduces the historical flush-only behaviour;
- an append that fails with ``OSError`` (a full or failing disk — or
  the chaos shim pretending to be one) is absorbed: the record stays in
  memory for this process, a recovery newline isolates any torn tail,
  and a later ``--resume`` pass re-executes the lost index.  Version-1
  journals (no CRC) still load.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.utils import durable

#: Group-commit defaults: an fsync at most every N records or S seconds
#: of journal activity.  At campaign run rates this keeps the fsync cost
#: well under the per-run guest execution while bounding what a power
#: cut can lose to a small window (versus everything under flush-only).
FSYNC_EVERY = 64
FSYNC_INTERVAL = 0.05

#: Accepted ``fsync`` policies of :class:`RunJournal`.
FSYNC_POLICIES = ("group", "always", "close")

_KEY_COMPONENTS = ("workload", "model", "point")


def run_key(workload: str, model: str, point: str, run_index: int) -> str:
    """The journal key of one run == the name of its RNG stream.

    Component names are validated: a ``/`` (or newline, or emptiness)
    inside a workload/model/point name would silently alias distinct
    journal keys and RNG streams, corrupting resume and determinism.
    """
    for kind, value in zip(_KEY_COMPONENTS, (workload, model, point)):
        if (not isinstance(value, str) or not value
                or "/" in value or "\n" in value or "\r" in value):
            raise ValueError(
                f"invalid {kind} name {value!r} in run key: names must be "
                f"non-empty strings without '/' or newlines (they are "
                f"joined with '/' into journal keys and RNG stream names)"
            )
    return f"{workload}/{model}/{point}/{run_index}"


def _payload_crc(payload: dict) -> int:
    """CRC32 over the canonical JSON dump of a payload (sans ``crc``)."""
    blob = json.dumps({k: v for k, v in payload.items() if k != "crc"},
                      sort_keys=True, separators=(",", ":"))
    return zlib.crc32(blob.encode("utf-8")) & 0xFFFFFFFF


def _crc_ok(payload: dict, strict: bool = False) -> bool:
    """Whether a loaded line's CRC matches.

    ``strict`` requires the ``crc`` field to be present and match —
    bit-rot can mutate the key itself (``"crc"`` → ``"c2c"`` is a
    single-bit flip), so on a journal known to be v2 a missing CRC *is*
    corruption.  Non-strict accepts CRC-less lines (legacy v1 files).
    """
    crc = payload.get("crc")
    if crc is None:
        return not strict
    return crc == _payload_crc(payload)


def _parse_lines(path: Union[str, Path]) -> Tuple[List[Optional[dict]], bool]:
    """Parse a journal into per-line payloads plus a strictness verdict.

    Returns ``(payloads, strict)`` where unparseable (torn) lines are
    ``None`` and ``strict`` is True iff any line carries a ``crc`` —
    meaning a v2 writer produced the file and every valid line must
    check out; only a genuine v1 file (no CRCs anywhere) is read
    leniently.
    """
    payloads: List[Optional[dict]] = []
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                parsed = json.loads(raw)
            except json.JSONDecodeError:
                payloads.append(None)
                continue
            payloads.append(parsed if isinstance(parsed, dict) else None)
    strict = any(p is not None and "crc" in p for p in payloads)
    return payloads, strict


class JournalMismatch(ValueError):
    """The journal on disk belongs to a different campaign seed."""


@dataclass
class RunRecord:
    """One classified injection run, as journaled.

    ``outcome`` is the :class:`~repro.campaign.outcomes.Outcome` value
    string; ``unexpected`` carries the repr of a guest exception that was
    not in ``CRASH_EXCEPTIONS`` (classified Crash, but kept visible).
    """

    workload: str
    model: str
    point: str
    run_index: int
    outcome: str
    injected: bool = True
    uarch_masked: int = 0
    watchdog: bool = False
    unexpected: Optional[str] = None
    wall_ms: float = 0.0
    retries: int = 0
    #: Horvitz–Thompson importance weight of the sampled victim relative
    #: to uniform placement; 1.0 for every uniformly-sampling model.
    weight: float = 1.0

    @property
    def key(self) -> str:
        return run_key(self.workload, self.model, self.point,
                       self.run_index)

    @property
    def cell(self) -> Tuple[str, str, str]:
        return (self.workload, self.model, self.point)


class RunJournal:
    """Append-only JSONL journal of a campaign's runs.

    Open with ``resume=True`` to load existing records and append after
    them; with ``resume=False`` (the default) an existing file is
    truncated and the campaign starts clean.  ``fsync`` selects the
    durability policy (see the module docstring).
    """

    VERSION = 3

    def __init__(self, path: Union[str, Path], seed: int,
                 resume: bool = False, fsync: str = "group",
                 fsync_every: int = FSYNC_EVERY,
                 fsync_interval: float = FSYNC_INTERVAL):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r} "
                f"(expected one of {', '.join(FSYNC_POLICIES)})")
        self.path = Path(path)
        self.seed = int(seed)
        self.fsync = fsync
        self.fsync_every = max(1, int(fsync_every))
        self.fsync_interval = float(fsync_interval)
        self.stats: Dict[str, int] = {
            "records": 0, "fsyncs": 0, "write_errors": 0,
            "crc_failures": 0,
        }
        self._runs: Dict[Tuple[str, str, str], Dict[int, RunRecord]] = {}
        self._harness_errors: List[dict] = []
        self._cells: List[dict] = []
        self._stops: Dict[Tuple[str, str, str], dict] = {}
        self._since_fsync = 0
        self._last_fsync = time.monotonic()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing = resume and self.path.exists() and (
            self.path.stat().st_size > 0
        )
        if existing:
            self._load()
            self._fh = open(self.path, "ab")
        else:
            self._fh = open(self.path, "wb")
            self._write({"type": "meta", "version": self.VERSION,
                         "seed": self.seed})

    @classmethod
    def open(cls, path: Union[str, Path], seed: int,
             resume: bool = False, fsync: str = "group") -> "RunJournal":
        return cls(path, seed, resume=resume, fsync=fsync)

    # -- writing ---------------------------------------------------------------
    def _do_fsync(self) -> None:
        os.fsync(self._fh.fileno())
        self.stats["fsyncs"] += 1
        self._since_fsync = 0
        self._last_fsync = time.monotonic()

    def _maybe_fsync(self) -> None:
        if self.fsync == "close":
            return
        if self.fsync == "always":
            self._do_fsync()
            return
        if (self._since_fsync >= self.fsync_every
                or time.monotonic() - self._last_fsync
                >= self.fsync_interval):
            self._do_fsync()

    def _write(self, payload: dict) -> None:
        line = dict(payload)
        line["crc"] = _payload_crc(payload)
        data = (json.dumps(line, separators=(",", ":")) + "\n").encode()
        written, failure = durable.get_fault_hook().filter_write(
            "journal", str(self.path), data)
        try:
            self._fh.write(written)
            self._fh.flush()
            if failure is not None:
                raise failure
        except OSError:
            # The record is lost on disk but kept in memory: this
            # process keeps its exact results, and a resume pass simply
            # re-executes the missing index.  A recovery newline keeps a
            # torn tail from gluing onto the next record.
            self.stats["write_errors"] += 1
            try:
                self._fh.write(b"\n")
                self._fh.flush()
            except OSError:  # pragma: no cover - disk still failing
                pass
            return
        self.stats["records"] += 1
        self._since_fsync += 1
        self._maybe_fsync()
        durable.get_fault_hook().on_journal_record(str(self.path))

    def record_run(self, record: RunRecord) -> None:
        payload = {"type": "run", "seed": self.seed}
        payload.update(asdict(record))
        self._write(payload)
        self._runs.setdefault(record.cell, {})[record.run_index] = record

    def record_harness_error(self, key: str, attempt: int,
                             error: str) -> None:
        payload = {"type": "harness_error", "key": key,
                   "attempt": attempt, "error": error}
        self._write(payload)
        self._harness_errors.append(payload)

    def record_cell(self, result) -> None:
        """Summarise a completed cell (a ``CampaignResult``-shaped object)."""
        counts = {o.value: n for o, n in result.counts.counts.items()}
        payload = {
            "type": "cell", "workload": result.workload,
            "model": result.model, "point": result.point,
            "runs": result.counts.total, "counts": counts,
            "error_ratio": result.error_ratio, "avm": result.avm,
            "degraded": bool(getattr(result, "degraded", False)),
        }
        self._write(payload)
        self._cells.append(payload)

    def record_stop(self, workload: str, model: str, point: str,
                    decision) -> None:
        """Journal the stop-decision provenance of an adaptive cell.

        ``decision`` is a ``StopDecision``-shaped object (anything with a
        ``to_dict``).  A resumed campaign re-derives the decision from the
        replayed run prefix and journals it again; ``canonical_journal``
        keeps the last occurrence, so resume must reproduce the same
        decision to stay canonical-equal to the uninterrupted run.
        """
        payload = {"type": "stop", "workload": workload, "model": model,
                   "point": point}
        payload.update(decision.to_dict())
        self._write(payload)
        self._stops[(workload, model, point)] = payload

    # -- reading ---------------------------------------------------------------
    def _load(self) -> None:
        payloads, strict = _parse_lines(self.path)
        for payload in payloads:
            if payload is None:
                # A kill mid-write truncates/tears the line; the
                # affected run is simply re-executed on resume.
                continue
            if not _crc_ok(payload, strict=strict):
                # Silent corruption (bit-rot): quarantine the line —
                # never replay a record the checksum disowns.  On a
                # v2 journal a *missing* CRC is corruption too (the
                # key itself may have rotted).
                self.stats["crc_failures"] += 1
                continue
            kind = payload.get("type")
            if kind == "meta":
                if payload.get("seed") != self.seed:
                    raise JournalMismatch(
                        f"journal {self.path} was written for seed "
                        f"{payload.get('seed')}, not {self.seed}"
                    )
            elif kind == "run":
                record = RunRecord(**{
                    k: payload[k] for k in (
                        "workload", "model", "point", "run_index",
                        "outcome", "injected", "uarch_masked",
                        "watchdog", "unexpected", "wall_ms", "retries",
                        "weight",
                    ) if k in payload
                })
                self._runs.setdefault(record.cell, {})[
                    record.run_index
                ] = record
            elif kind == "harness_error":
                self._harness_errors.append(payload)
            elif kind == "cell":
                self._cells.append(payload)
            elif kind == "stop":
                key = (payload.get("workload"), payload.get("model"),
                       payload.get("point"))
                self._stops[key] = payload

    def completed_runs(self, workload: str, model: str,
                       point: str) -> Dict[int, RunRecord]:
        """Journaled runs of one cell, keyed by run index."""
        return dict(self._runs.get((workload, model, point), {}))

    def harness_errors(self, key_prefix: str = "") -> List[dict]:
        return [e for e in self._harness_errors
                if e["key"].startswith(key_prefix)]

    @property
    def cells(self) -> List[dict]:
        return list(self._cells)

    def stop_decision(self, workload: str, model: str,
                      point: str) -> Optional[dict]:
        """The journaled stop payload of one adaptive cell, if any."""
        return self._stops.get((workload, model, point))

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        total = sum(len(v) for v in self._runs.values())
        return (f"RunJournal(path={str(self.path)!r}, seed={self.seed}, "
                f"runs={total})")


def canonical_journal(path: Union[str, Path]) -> str:
    """Canonical, fault-invariant rendering of a journal file.

    The equivalence form of the chaos differential: two campaigns of the
    same cells are *the same campaign* iff their canonical journals are
    byte-identical.  Canonicalisation drops everything faults may
    legitimately perturb without changing the data — per-run wall
    clocks, retry counts, CRCs, harness-error lines, the meta line,
    corrupt/torn lines — keeps the last occurrence of each run and cell
    (a heal pass may re-append either), and sorts deterministically.
    """
    runs: Dict[tuple, str] = {}
    cells: Dict[tuple, str] = {}
    stops: Dict[tuple, str] = {}
    payloads, strict = _parse_lines(path)
    for payload in payloads:
        if payload is None or not _crc_ok(payload, strict=strict):
            continue
        kind = payload.get("type")
        if kind == "run":
            entry = {k: v for k, v in payload.items()
                     if k not in ("wall_ms", "retries", "crc")}
            try:
                key = (entry["workload"], entry["model"],
                       entry["point"], entry["run_index"])
            except KeyError:
                continue
            runs[key] = json.dumps(entry, sort_keys=True,
                                   separators=(",", ":"))
        elif kind == "cell":
            entry = {k: v for k, v in payload.items() if k != "crc"}
            key = (entry.get("workload"), entry.get("model"),
                   entry.get("point"))
            cells[key] = json.dumps(entry, sort_keys=True,
                                    separators=(",", ":"))
        elif kind == "stop":
            entry = {k: v for k, v in payload.items() if k != "crc"}
            key = (entry.get("workload"), entry.get("model"),
                   entry.get("point"))
            stops[key] = json.dumps(entry, sort_keys=True,
                                    separators=(",", ":"))
    lines = [runs[key] for key in sorted(runs)]
    lines += [cells[key] for key in sorted(cells)]
    lines += [stops[key] for key in sorted(stops)]
    return "\n".join(lines) + ("\n" if lines else "")
