"""Campaign execution: golden runs + statistically sized injection runs.

One :class:`CampaignRunner` owns a benchmark instance.  Its golden run
produces the error-free output, the workload profile (dynamic FP counts +
operand traces), the OoO pipeline schedule and the microarchitectural
masking profile.  Each injection run then asks an error model for its
injection event, places it through the microarchitecture injector, and
executes the benchmark with the surviving corruption applied — classifying
the result per :mod:`repro.campaign.outcomes`.

Determinism: every stochastic decision draws from a named RNG stream
derived from (campaign seed, model, point, run index), so campaigns are
bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.campaign.outcomes import Outcome, OutcomeCounts
from repro.circuit.liberty import OperatingPoint
from repro.errors.base import ErrorModel, WorkloadProfile
from repro.uarch.core import CoreParams, OoOCore, PipelineSchedule
from repro.uarch.injector import MicroArchInjector
from repro.uarch.masking import MaskingProfile
from repro.uarch.trace import MIXES, synthesize_trace
from repro.utils.rng import RngStream
from repro.utils.stats import confidence_sample_size
from repro.workloads.base import (
    FPContext,
    GuestCrash,
    GuestTimeout,
    Workload,
)

#: Exception types classified as Crash (process kill / panic / SIGFPE).
CRASH_EXCEPTIONS = (
    GuestCrash,
    FloatingPointError,
    ZeroDivisionError,
    IndexError,
    MemoryError,
    OverflowError,
)


@dataclass
class GoldenRun:
    """Everything the injection phase needs from the error-free run."""

    output: object
    profile: WorkloadProfile
    schedule: PipelineSchedule
    masking: MaskingProfile
    op_budget: int
    fp_ops_executed: int


@dataclass
class CampaignResult:
    """Outcome of one (benchmark, model, point) campaign cell."""

    workload: str
    model: str
    point: str
    counts: OutcomeCounts
    error_ratio: float          # the model's injected-error ratio (Fig. 10)
    uarch_masked: int = 0       # victims squashed/dead before software
    runs_without_injection: int = 0
    seed: int = 0

    @property
    def avm(self) -> float:
        return self.counts.avm


class CampaignRunner:
    """Runs injection campaigns for one benchmark."""

    def __init__(self, workload: Workload,
                 core_params: Optional[CoreParams] = None,
                 seed: int = 2021,
                 trace_cap: int = 1_000_000):
        self.workload = workload
        self.core = OoOCore(core_params or CoreParams())
        self.seed = seed
        self.trace_cap = trace_cap
        self._golden: Optional[GoldenRun] = None

    # -- golden phase ---------------------------------------------------------------
    def golden(self) -> GoldenRun:
        """Error-free reference run (cached)."""
        if self._golden is not None:
            return self._golden
        ctx = self.workload.make_context(
            record_trace=True, trace_cap=self.trace_cap
        )
        output = self.workload.run(ctx)
        profile = ctx.profile(self.workload.name, self.workload.ops_per_fp)

        mix = MIXES.get(self.workload.mix_name, MIXES["default"])
        window = synthesize_trace(
            self.workload.name, ctx.fp_op_sequence(), mix=mix,
            seed=self.seed,
        )
        schedule = self.core.simulate(
            window,
            total_fp_instructions=profile.fp_instructions,
            ops_per_fp=mix.ops_per_fp,
        )
        profile.golden_cycles = schedule.total_cycles
        masking = MaskingProfile.from_schedule(schedule)
        self._golden = GoldenRun(
            output=output,
            profile=profile,
            schedule=schedule,
            masking=masking,
            op_budget=2 * ctx.ops_executed,
            fp_ops_executed=ctx.ops_executed,
        )
        return self._golden

    # -- injection phase ---------------------------------------------------------------
    def run_once(self, model: ErrorModel, point: OperatingPoint,
                 run_index: int) -> Outcome:
        """Execute a single injection run and classify it."""
        golden = self.golden()
        rng = RngStream(
            self.seed, f"{self.workload.name}/{model.name}/{point.name}/"
            f"{run_index}"
        )
        plan = model.plan(golden.profile, point, rng)
        injector = MicroArchInjector(golden.schedule, golden.masking)
        placed = injector.place(plan, rng)
        corruption = placed.corruption_map()
        if not corruption:
            # Nothing reached architectural state: trivially masked.
            return Outcome.MASKED
        ctx = self.workload.make_context(
            corruption=corruption, op_budget=golden.op_budget
        )
        try:
            observed = self.workload.run(ctx)
        except GuestTimeout:
            return Outcome.TIMEOUT
        except CRASH_EXCEPTIONS:
            return Outcome.CRASH
        if self.workload.outputs_equal(golden.output, observed):
            return Outcome.MASKED
        return Outcome.SDC

    def campaign(self, model: ErrorModel, point: OperatingPoint,
                 runs: Optional[int] = None) -> CampaignResult:
        """Run a full campaign cell (default: the paper's 1068 runs)."""
        if runs is None:
            runs = confidence_sample_size()  # 1068
        golden = self.golden()
        counts = OutcomeCounts()
        uarch_masked = 0
        no_injection = 0
        injector = MicroArchInjector(golden.schedule, golden.masking)
        for run_index in range(runs):
            rng = RngStream(
                self.seed,
                f"{self.workload.name}/{model.name}/{point.name}/{run_index}",
            )
            plan = model.plan(golden.profile, point, rng)
            if not plan.injects:
                no_injection += 1
                counts.record(Outcome.MASKED)
                continue
            placed = injector.place(plan, rng)
            uarch_masked += placed.masked_count
            corruption = placed.corruption_map()
            if not corruption:
                counts.record(Outcome.MASKED)
                continue
            counts.record(self._execute(corruption, golden))
        return CampaignResult(
            workload=self.workload.name,
            model=model.name,
            point=point.name,
            counts=counts,
            error_ratio=model.error_ratio(golden.profile, point),
            uarch_masked=uarch_masked,
            runs_without_injection=no_injection,
            seed=self.seed,
        )

    def _execute(self, corruption, golden: GoldenRun) -> Outcome:
        ctx = self.workload.make_context(
            corruption=corruption, op_budget=golden.op_budget
        )
        try:
            observed = self.workload.run(ctx)
        except GuestTimeout:
            return Outcome.TIMEOUT
        except CRASH_EXCEPTIONS:
            return Outcome.CRASH
        if self.workload.outputs_equal(golden.output, observed):
            return Outcome.MASKED
        return Outcome.SDC
