"""Campaign execution: golden runs + statistically sized injection runs.

One :class:`CampaignRunner` owns a benchmark instance.  Its golden run
produces the error-free output, the workload profile (dynamic FP counts +
operand traces), the OoO pipeline schedule and the microarchitectural
masking profile.  Each injection run then asks an error model for its
injection event, places it through the microarchitecture injector, and
executes the benchmark with the surviving corruption applied — classifying
the result per :mod:`repro.campaign.outcomes`.

All classification happens at one hardened guest boundary
(:meth:`CampaignRunner.run_guest`): any exception escaping
``Workload.run`` is a guest outcome (Crash/Timeout), never a harness
abort; exceptions raised *outside* that boundary (model planning,
placement, context construction) are harness errors and propagate to the
caller — :mod:`repro.campaign.executor` retries and journals those.

Determinism: every stochastic decision draws from a named RNG stream
derived from (campaign seed, model, point, run index), so campaigns are
bit-reproducible.  The stream name doubles as the run's journal key.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.campaign.fastforward import FastForwardConfig, SnapshotStore
from repro.campaign.journal import run_key
from repro.campaign.outcomes import Outcome, OutcomeCounts
from repro.circuit.liberty import OperatingPoint
from repro.errors.base import ErrorModel, WorkloadProfile
from repro.uarch.core import CoreParams, OoOCore, PipelineSchedule
from repro.uarch.injector import MicroArchInjector
from repro.uarch.masking import MaskingProfile
from repro.uarch.trace import MIXES, synthesize_trace
from repro.utils.rng import RngStream
from repro.workloads.base import (
    GuestCrash,
    GuestFpException,
    GuestTimeout,
    Workload,
)
from repro import telemetry
from repro.observe import flight

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.executor import CampaignExecutor, CellStats

#: Exception types classified as Crash (process kill / panic / SIGFPE).
CRASH_EXCEPTIONS = (
    GuestCrash,
    FloatingPointError,
    ZeroDivisionError,
    IndexError,
    MemoryError,
    OverflowError,
)


class WatchdogTimeout(BaseException):
    """The wall-clock watchdog expired while the guest was running.

    Derives from ``BaseException`` so a guest's blanket ``except
    Exception`` cannot swallow the watchdog: only the classification
    boundary catches it.
    """


@contextmanager
def guest_watchdog(seconds: Optional[float]):
    """Arm a wall-clock SIGALRM watchdog around a guest execution.

    Catches guests that hang without charging FP operations (so the
    FP-op budget's :class:`GuestTimeout` never fires).  Only active on
    the main thread of the process (the only place ``signal`` handlers
    can be installed); a worker process runs guests on its main thread,
    and the pool's parent-side kill deadline is the backstop for guests
    stuck with signals blocked.
    """
    if (not seconds or seconds <= 0
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _expired(signum, frame):
        raise WatchdogTimeout(
            f"guest exceeded the {seconds:.3g}s wall-clock watchdog"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class GoldenRun:
    """Everything the injection phase needs from the error-free run."""

    output: object
    profile: WorkloadProfile
    schedule: PipelineSchedule
    masking: MaskingProfile
    op_budget: int
    fp_ops_executed: int
    #: Fast-forward snapshot store; None when disabled or the workload
    #: is not checkpointable (injection runs then replay in full).
    snapshots: Optional[SnapshotStore] = None


@dataclass
class RunExecution:
    """One injection run as seen by the classification boundary."""

    outcome: Outcome
    injected: bool = True        # False when the plan had no victims
    uarch_masked: int = 0        # victims squashed/dead in the pipeline
    watchdog: bool = False       # the wall-clock watchdog fired
    unexpected: Optional[str] = None  # unlisted guest exception (repr)
    sdc_magnitude: Optional[float] = None  # rel. output error (SDC only)
    flight: Optional[dict] = None  # flight-record payload, recorder on
    fastforward: Optional[dict] = None  # restore/replay counters, ff on
    weight: float = 1.0  # HT importance weight of the sampled victim


@dataclass
class CampaignResult:
    """Outcome of one (benchmark, model, point) campaign cell."""

    workload: str
    model: str
    point: str
    counts: OutcomeCounts
    error_ratio: float          # the model's injected-error ratio (Fig. 10)
    uarch_masked: int = 0       # victims squashed/dead before software
    runs_without_injection: int = 0
    seed: int = 0
    stats: Optional["CellStats"] = None  # executor statistics, if any

    @property
    def avm(self) -> float:
        return self.counts.avm

    @property
    def degraded(self) -> bool:
        """Whether the executor abandoned part of this cell (see stats)."""
        return bool(self.stats is not None and self.stats.degraded)

    @property
    def stop(self):
        """The adaptive stop decision, when the cell ran adaptively."""
        return getattr(self.stats, "stop", None) if self.stats else None

    @property
    def avm_ht(self) -> float:
        """Horvitz–Thompson AVM: unbiased under importance sampling."""
        if self.stats is None or not self.counts.total:
            return self.avm
        return self.stats.weighted_non_masked / self.counts.total

    @property
    def avm_sn(self) -> float:
        """Self-normalized weighted AVM (lower variance, small bias)."""
        if self.stats is None or not self.stats.weight_sum:
            return self.avm
        return self.stats.weighted_non_masked / self.stats.weight_sum


class CampaignRunner:
    """Runs injection campaigns for one benchmark."""

    def __init__(self, workload: Workload,
                 core_params: Optional[CoreParams] = None,
                 seed: int = 2021,
                 trace_cap: int = 1_000_000,
                 fastforward: Optional[FastForwardConfig] = None):
        self.workload = workload
        self.core = OoOCore(core_params or CoreParams())
        self.seed = seed
        self.trace_cap = trace_cap
        self.fastforward = (FastForwardConfig() if fastforward is None
                            else fastforward)
        self._golden: Optional[GoldenRun] = None

    # -- golden phase ---------------------------------------------------------------
    def golden(self) -> GoldenRun:
        """Error-free reference run (cached)."""
        if self._golden is not None:
            return self._golden
        with telemetry.span("campaign.golden", workload=self.workload.name):
            return self._golden_uncached()

    def _golden_uncached(self) -> GoldenRun:
        ctx = self.workload.make_context(
            record_trace=True, trace_cap=self.trace_cap
        )
        snapshots: Optional[SnapshotStore] = None
        if self.fastforward.enabled and self.workload.checkpointable:
            snapshots = SnapshotStore(
                self.workload.name,
                interval=self.fastforward.interval,
                pages_factory=self.fastforward.make_pages)
            try:
                output = snapshots.build(self.workload, ctx)
            except GuestFpException:
                # The armed trap probe fired: the golden stream contains
                # non-finite values, so the early exit is unsound.
                # Rebuild cleanly on a fresh context with the probe off.
                ctx = self.workload.make_context(
                    record_trace=True, trace_cap=self.trace_cap
                )
                output = snapshots.build(self.workload, ctx,
                                         trap_probe=False)
        else:
            output = self.workload.run(ctx)
        profile = ctx.profile(self.workload.name, self.workload.ops_per_fp)

        mix = MIXES.get(self.workload.mix_name, MIXES["default"])
        window = synthesize_trace(
            self.workload.name, ctx.fp_op_sequence(), mix=mix,
            seed=self.seed,
        )
        schedule = self.core.simulate(
            window,
            total_fp_instructions=profile.fp_instructions,
            ops_per_fp=mix.ops_per_fp,
        )
        profile.golden_cycles = schedule.total_cycles
        masking = MaskingProfile.from_schedule(schedule)
        self._golden = GoldenRun(
            output=output,
            profile=profile,
            schedule=schedule,
            masking=masking,
            op_budget=2 * ctx.ops_executed,
            fp_ops_executed=ctx.ops_executed,
            snapshots=snapshots,
        )
        return self._golden

    # -- injection phase ---------------------------------------------------------------
    def execute_run(self, model: ErrorModel, point: OperatingPoint,
                    run_index: int,
                    injector: Optional[MicroArchInjector] = None,
                    wall_clock_timeout: Optional[float] = None,
                    guest_entry=None, attempt: int = 0) -> RunExecution:
        """Plan, place and execute one injection run.

        Exceptions raised before :meth:`run_guest` (planning/placement)
        are harness-side and propagate; everything escaping the guest is
        classified.  ``guest_entry``, when given, is called immediately
        before the guest boundary is entered — pool workers use it to
        tell the orchestrator that a subsequent death is a guest crash,
        not a harness failure.  ``attempt`` is the executor's harness
        retry counter; it only rides on the trace context so stitched
        spans can tell retries apart — it never influences the run.
        """
        golden = self.golden()
        telemetry.count("campaign.runs")
        rng = RngStream(
            self.seed,
            run_key(self.workload.name, model.name, point.name, run_index),
        )
        # Narrow the trace context to this run for the duration: the
        # stream name *is* the journal key, so every span closed below
        # (here or transitively in the guest) is stamped with the same
        # identity the journal and flight records use — the hook that
        # lets `repro trace query --explain` stitch one causal trace
        # out of parent and worker span streams.
        base_ctx = telemetry.get_trace_context()
        if base_ctx is not None:
            telemetry.set_trace_context(base_ctx.for_run(rng.name, attempt))
        try:
            with telemetry.span("campaign.run", run=run_index):
                return self._execute_planned(
                    model, point, run_index, rng, golden, injector,
                    wall_clock_timeout, guest_entry)
        finally:
            if base_ctx is not None:
                telemetry.set_trace_context(base_ctx)

    def _execute_planned(self, model: ErrorModel, point: OperatingPoint,
                         run_index: int, rng: RngStream,
                         golden: "GoldenRun",
                         injector: Optional[MicroArchInjector],
                         wall_clock_timeout: Optional[float],
                         guest_entry) -> RunExecution:
        capture = flight.begin_capture(
            self.workload.name, model.name, point.name, run_index,
            self.seed, rng.name,
        )
        plan = model.plan(golden.profile, point, rng)
        if not plan.injects:
            return self._finish(
                RunExecution(Outcome.MASKED, injected=False), capture)
        if injector is None:
            injector = MicroArchInjector(golden.schedule, golden.masking)
        placed = injector.place(plan, rng)
        corruption = placed.corruption_map()
        if capture is not None:
            capture["victims"] = [
                {"op": p.victim.op.value, "index": p.victim.index,
                 "bitmask": p.victim.bitmask, "cycle": p.cycle,
                 "masked": p.uarch_masked, "mask_cause": p.mask_cause}
                for p in placed.placements
            ]
            capture["corruption_size"] = sum(
                len(per_op) for per_op in corruption.values())
        weight = float(getattr(plan, "weight", 1.0))
        if not corruption:
            # Nothing reached architectural state: trivially masked.
            return self._finish(
                RunExecution(Outcome.MASKED,
                             uarch_masked=placed.masked_count,
                             weight=weight), capture)
        if guest_entry is not None:
            guest_entry()
        execution = self.run_guest(corruption, golden=golden,
                                   wall_clock_timeout=wall_clock_timeout)
        execution.uarch_masked = placed.masked_count
        execution.weight = weight
        return self._finish(execution, capture)

    @staticmethod
    def _finish(execution: RunExecution,
                capture: Optional[dict]) -> RunExecution:
        """Attach the completed flight capture to a run's execution."""
        if capture is not None:
            capture["injected"] = execution.injected
            capture["outcome"] = execution.outcome.value
            if execution.sdc_magnitude is not None:
                capture["sdc_magnitude"] = execution.sdc_magnitude
            if execution.watchdog:
                capture["watchdog"] = True
            if execution.unexpected is not None:
                capture["unexpected"] = execution.unexpected
            if execution.fastforward is not None:
                capture["fastforward"] = execution.fastforward
            execution.flight = capture
        return execution

    def run_guest(self, corruption, golden: Optional[GoldenRun] = None,
                  wall_clock_timeout: Optional[float] = None
                  ) -> RunExecution:
        """The single hardened classification boundary.

        Everything escaping ``Workload.run`` is a *guest* outcome: the
        budget's :class:`GuestTimeout` and the watchdog map to Timeout,
        ``CRASH_EXCEPTIONS`` to Crash, and any other exception — e.g. a
        ``ValueError`` from a corruption-deranged index — is also Crash
        (the guest terminated abnormally) but kept visible through
        ``RunExecution.unexpected`` so harness bugs can't hide as guest
        noise.
        """
        golden = golden or self.golden()
        telemetry.count("campaign.guest_runs")
        ctx = self.workload.make_context(
            corruption=corruption, op_budget=golden.op_budget
        )
        snapshots = golden.snapshots
        # Filled in place by run_injection, so restore/skip counters
        # survive a guest exception mid-suffix.
        ff_info: Optional[dict] = {} if snapshots is not None else None
        if snapshots is None:
            telemetry.count("campaign.ff.full_replays")
        try:
            with guest_watchdog(wall_clock_timeout):
                if snapshots is not None:
                    observed = snapshots.run_injection(
                        self.workload, ctx, corruption, info=ff_info)
                else:
                    observed = self.workload.run(ctx)
        except GuestTimeout:
            return RunExecution(Outcome.TIMEOUT, fastforward=ff_info)
        except WatchdogTimeout:
            return RunExecution(Outcome.TIMEOUT, watchdog=True,
                                fastforward=ff_info)
        except CRASH_EXCEPTIONS:
            return RunExecution(Outcome.CRASH, fastforward=ff_info)
        except Exception as exc:
            return RunExecution(
                Outcome.CRASH,
                unexpected=f"{type(exc).__name__}: {exc}",
                fastforward=ff_info,
            )
        if self.workload.outputs_equal(golden.output, observed):
            return RunExecution(Outcome.MASKED, fastforward=ff_info)
        execution = RunExecution(Outcome.SDC, fastforward=ff_info)
        if flight.enabled():
            # Observational only — measured solely when recording, so
            # recorder-off campaigns pay nothing for it.
            execution.sdc_magnitude = self.workload.sdc_magnitude(
                golden.output, observed)
        return execution

    def run_once(self, model: ErrorModel, point: OperatingPoint,
                 run_index: int) -> Outcome:
        """Execute a single injection run and classify it."""
        return self.execute_run(model, point, run_index).outcome

    def campaign(self, model: ErrorModel, point: OperatingPoint,
                 runs: Optional[int] = None,
                 executor: Optional["CampaignExecutor"] = None,
                 adaptive=None) -> CampaignResult:
        """Run a full campaign cell (default: the paper's 1068 runs).

        Goes through the fault-tolerant executor; without an explicit
        ``executor`` a serial in-process one (no journal, no watchdog) is
        used, which reproduces the historical behaviour bit-for-bit.
        ``adaptive`` (an :class:`~repro.campaign.adaptive.AdaptiveConfig`)
        turns ``runs`` into a ceiling and stops the cell when its
        anytime-valid interval reaches the target half-width.
        """
        from repro.campaign.executor import CampaignExecutor

        if executor is None:
            executor = CampaignExecutor(self)
        return executor.run_cell(model, point, runs=runs,
                                 adaptive=adaptive)
