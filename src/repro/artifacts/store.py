"""The unified content-addressed artifact store.

One keyed, checksummed, atomic-write API for everything the campaign
infrastructure persists — characterised models (ModelCache), snapshot
pages (PageStore), and campaign journals — so shard workers, the
coordinator and serving processes all share one cache, with no
possibility of key aliasing between consumers.

Layout (git-like, over any :class:`~repro.artifacts.backend.Backend`):

- ``objects/<aa>/<sha256-hex>`` — immutable blobs named by their own
  SHA-256.  Content addressing makes checksums free: a blob that does
  not hash back to its name is *quarantined* (moved aside with a
  ``.quarantined`` suffix so the corrupt bytes stay inspectable but can
  never be served again) and reported, never returned.
- ``refs/<namespace>/<key>`` — tiny mutable pointers mapping a caller's
  key to an object address.  Namespaces ("model-cache", "pages",
  "journals", ...) partition consumers; a key can never alias across
  namespaces.  Ref writes are atomic replaces, so concurrent writers
  are last-write-wins with no torn state — and because every consumer
  keys refs by a content hash of the *inputs*, concurrent writers of
  the same key carry identical payloads anyway.
- ``streams/<namespace>/<key>`` — append-oriented artifacts (run
  journals) that need a real local file for O_APPEND + fsync.  Only
  directory backends support streams; an S3-shaped backend would
  buffer locally and archive on close, which is exactly what
  :meth:`archive_stream` does at merge time.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.artifacts.backend import (
    Backend,
    LocalDirBackend,
    MemoryBackend,
    encode_key,
)

PathLike = Union[str, Path]

#: Suffix quarantined blobs/refs are renamed to.  Quarantined entries
#: are invisible to every read path but stay on disk for post-mortems.
QUARANTINE_SUFFIX = ".quarantined"


class ObjectCorruption(RuntimeError):
    """A stored object's bytes no longer hash to its address."""


class ArtifactIntegrityError(RuntimeError):
    """A ref exists but cannot be served (bad address, missing or
    corrupt object).  The offending pieces have been quarantined."""


def object_address(data: bytes) -> str:
    """The content address (SHA-256 hex) of a blob."""
    return hashlib.sha256(data).hexdigest()


def _object_key(address: str) -> str:
    return f"objects/{address[:2]}/{address}"


def _ref_key(namespace: str, key: str) -> str:
    if not namespace or "/" in namespace:
        raise ValueError(f"malformed namespace {namespace!r}")
    return f"refs/{namespace}/{key}"


class ArtifactStore:
    """Content-addressed objects plus per-namespace keyed refs.

    The store is safe to share between processes on one host (every
    mutation is an atomic write; objects are immutable) and between
    consumers (namespaces partition the key space).  ``stats`` counts
    this instance's traffic: hits, misses, corrupt objects quarantined.
    """

    def __init__(self, backend: Backend):
        self.backend = backend
        self._stats = {"hits": 0, "misses": 0, "writes": 0,
                       "corrupt": 0, "quarantined": 0}

    # -- construction helpers ----------------------------------------------------
    @classmethod
    def local(cls, root: PathLike) -> "ArtifactStore":
        return cls(LocalDirBackend(root))

    @classmethod
    def in_memory(cls) -> "ArtifactStore":
        return cls(MemoryBackend())

    @property
    def local_root(self) -> Optional[Path]:
        """The backing directory, when the backend is a local one."""
        root = getattr(self.backend, "root", None)
        return Path(root) if root is not None else None

    # -- objects (immutable, content-addressed) ----------------------------------
    def put_object(self, data: bytes, target: str = "artifact") -> str:
        """Store a blob under its content address; returns the address.

        Idempotent: re-putting existing content is a no-op (the write
        is skipped, which is what makes concurrent identical writers
        cheap and conflict-free).
        """
        address = object_address(data)
        key = _object_key(address)
        if self.backend.get(key) is None:
            self.backend.put(key, data, target=target)
            self._stats["writes"] += 1
        return address

    def get_object(self, address: str) -> Optional[bytes]:
        """The blob at ``address``, or None if absent.

        Verification is intrinsic: bytes that do not hash back to the
        address are quarantined and raise :class:`ObjectCorruption` —
        corrupt artifacts are detected, never served.
        """
        key = _object_key(address)
        data = self.backend.get(key)
        if data is None:
            return None
        if object_address(data) != address:
            self._stats["corrupt"] += 1
            self._quarantine_key(key)
            raise ObjectCorruption(
                f"object {address} failed content verification")
        return data

    def has_object(self, address: str) -> bool:
        return self.backend.get(_object_key(address)) is not None

    def object_path(self, address: str) -> Path:
        """Local path of an object (directory backends only)."""
        return self._local_backend().path_for(_object_key(address))

    # -- refs (mutable, namespaced keys) -----------------------------------------
    def put(self, namespace: str, key: str, data: bytes,
            target: str = "artifact") -> str:
        """Store ``data`` and point ``namespace/key`` at it."""
        address = self.put_object(data, target=target)
        self.backend.put(_ref_key(namespace, key),
                         (address + "\n").encode("ascii"), target=target)
        return address

    def resolve(self, namespace: str, key: str) -> Optional[str]:
        """The object address behind a ref, or None if absent.

        A ref whose contents are not a well-formed address counts as
        corrupt: it is quarantined and :class:`ArtifactIntegrityError`
        is raised.
        """
        raw = self.backend.get(_ref_key(namespace, key))
        if raw is None:
            return None
        address = raw.decode("ascii", "replace").strip()
        if len(address) != 64 or any(c not in "0123456789abcdef"
                                     for c in address):
            self._stats["corrupt"] += 1
            self.quarantine(namespace, key)
            raise ArtifactIntegrityError(
                f"ref {namespace}/{key} holds a malformed address")
        return address

    def get(self, namespace: str, key: str) -> Optional[bytes]:
        """The bytes behind ``namespace/key``; None if never stored.

        Integrity failures anywhere along the ref → object chain raise
        :class:`ArtifactIntegrityError` after quarantining the broken
        pieces, so callers can distinguish "not cached" (None) from
        "cached but rotted" (exception) — the latter is what cache
        layers count as *invalid* and recompute.
        """
        address = self.resolve(namespace, key)
        if address is None:
            self._stats["misses"] += 1
            return None
        try:
            data = self.get_object(address)
        except ObjectCorruption:
            self.quarantine(namespace, key)
            raise ArtifactIntegrityError(
                f"object behind {namespace}/{key} failed verification")
        if data is None:
            # Dangling ref: the object was quarantined or deleted.
            self._stats["corrupt"] += 1
            self.quarantine(namespace, key)
            raise ArtifactIntegrityError(
                f"ref {namespace}/{key} points at a missing object")
        self._stats["hits"] += 1
        return data

    def exists(self, namespace: str, key: str) -> bool:
        return self.backend.get(_ref_key(namespace, key)) is not None

    def delete(self, namespace: str, key: str) -> bool:
        return self.backend.delete(_ref_key(namespace, key))

    def list(self, namespace: str) -> Iterator[str]:
        """All keys with live refs in ``namespace``."""
        prefix = f"refs/{namespace}/"
        for key in self.backend.list_keys(prefix):
            if not key.endswith(QUARANTINE_SUFFIX):
                yield key[len(prefix):]

    def ref_path(self, namespace: str, key: str) -> Path:
        """Local path of a ref (directory backends only)."""
        return self._local_backend().path_for(_ref_key(namespace, key))

    # -- quarantine --------------------------------------------------------------
    def quarantine(self, namespace: str, key: str) -> bool:
        """Move a keyed entry (ref and, if resolvable, its object) aside.

        Quarantined files keep their bytes under a ``.quarantined``
        suffix — inspectable forever, servable never.  Returns True if
        anything was moved.
        """
        ref_key = _ref_key(namespace, key)
        raw = self.backend.get(ref_key)
        moved = False
        if raw is not None:
            address = raw.decode("ascii", "replace").strip()
            if len(address) == 64:
                moved |= self._quarantine_key(_object_key(address))
            moved |= self._quarantine_key(ref_key)
        if moved:
            self._stats["quarantined"] += 1
        return moved

    def _quarantine_key(self, key: str) -> bool:
        return self.backend.rename(key, key + QUARANTINE_SUFFIX)

    # -- streams (append-oriented artifacts: journals) ---------------------------
    def stream_path(self, namespace: str, key: str) -> Path:
        """A real local file path for an append-oriented artifact.

        Journals need O_APPEND + per-record fsync, which an object API
        cannot express; directory backends hand out a path under
        ``streams/`` instead.  The parent directory is created.
        """
        backend = self._local_backend()
        path = backend.root / "streams" / namespace / encode_key(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        return path

    def list_streams(self, namespace: str, prefix: str = "") -> List[Path]:
        backend = self._local_backend()
        root = backend.root / "streams" / namespace
        if not root.is_dir():
            return []
        paths = [p for p in sorted(root.rglob("*"))
                 if p.is_file() and not (p.name.startswith(".")
                                         and p.name.endswith(".tmp"))]
        if prefix:
            # A "dir/" prefix is a whole-segment match: encode the key
            # part, keep the separator (encode_key rejects it).
            encoded = encode_key(prefix.rstrip("/"))
            if prefix.endswith("/"):
                encoded += "/"
            paths = [p for p in paths
                     if str(p.relative_to(root)).startswith(encoded)]
        return paths

    def archive_stream(self, namespace: str, key: str,
                       path: PathLike) -> str:
        """Freeze a finished stream into the content-addressed layer.

        Stores the file's bytes as an object and points
        ``namespace/key`` at it — how per-shard journals become
        immutable, checksummed merge inputs.
        """
        return self.put(namespace, key, Path(path).read_bytes(),
                        target="journal")

    # -- misc --------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return dict(self._stats)

    def _local_backend(self) -> LocalDirBackend:
        if not isinstance(self.backend, LocalDirBackend):
            raise NotImplementedError(
                "this operation needs a local filesystem backend "
                f"(got {type(self.backend).__name__}); S3-shaped "
                "backends would buffer streams locally and archive on "
                "close")
        return self.backend
