"""Unified content-addressed artifact layer.

- :mod:`repro.artifacts.backend` — the flat byte-store protocol and its
  two implementations (local directory with crash-consistent writes and
  orphan-tmp sweeping; in-memory for tests and as the S3 template),
- :mod:`repro.artifacts.store` — the :class:`ArtifactStore`: immutable
  SHA-256-addressed objects, per-namespace keyed refs, quarantine for
  anything that fails verification, and local stream paths for
  append-oriented artifacts.

ModelCache (:mod:`repro.errors.pipeline`), PageStore
(:mod:`repro.uarch.snapshot`) and the sharded campaign journals
(:mod:`repro.campaign.shard`) are all served from this one layer, which
is what lets shard workers, coordinators and serving processes share
caches through a single directory (or, later, bucket).
"""

from repro.artifacts.backend import (
    Backend,
    LocalDirBackend,
    MemoryBackend,
    decode_key,
    encode_key,
)
from repro.artifacts.store import (
    ArtifactIntegrityError,
    ArtifactStore,
    ObjectCorruption,
    QUARANTINE_SUFFIX,
    object_address,
)

__all__ = [
    "ArtifactIntegrityError",
    "ArtifactStore",
    "Backend",
    "LocalDirBackend",
    "MemoryBackend",
    "ObjectCorruption",
    "QUARANTINE_SUFFIX",
    "decode_key",
    "encode_key",
    "object_address",
]
