"""Storage backends for the unified artifact store.

A backend is a flat, S3-shaped byte namespace: string keys with ``/``
separators map to byte blobs, with exactly four verbs — ``get``,
``put``, ``delete``, ``list_keys`` — plus ``rename`` (used only for
quarantine, emulatable on object stores as copy+delete).  Everything
clever (content addressing, checksums, refs, quarantine policy) lives
one level up in :class:`repro.artifacts.ArtifactStore`; backends stay
dumb enough that an S3/GCS implementation is a straight transliteration
of :class:`MemoryBackend` onto a bucket client.

:class:`LocalDirBackend` is the production backend: every ``put`` is a
crash-consistent atomic write (temp + fsync + rename, via
:mod:`repro.utils.durable`) and opening a directory sweeps atomic-write
temp files orphaned by processes that died mid-write.
"""

from __future__ import annotations

import os
import urllib.parse
from pathlib import Path
from typing import Dict, Iterator, Optional, Protocol, Union

from repro.utils import durable

PathLike = Union[str, Path]

#: Characters allowed verbatim in an encoded key segment.  Everything
#: else is percent-encoded, which keeps the path↔key mapping injective
#: (no two keys can collide on disk) and directory-safe.
_SAFE = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_."


def encode_key(key: str) -> str:
    """Filesystem-safe, injective encoding of a backend key.

    ``/`` separates segments (kept, so hierarchical keys become real
    directories locally and prefixes on object stores); every other
    byte outside ``[A-Za-z0-9-_]`` is percent-encoded.  A leading dot
    in a segment is encoded too, so encoded names can never collide
    with the ``.{name}.{pid}.tmp`` atomic-write temp namespace.
    """
    if not key or key.startswith("/") or key.endswith("/") or "//" in key:
        raise ValueError(f"malformed artifact key {key!r}")
    segments = []
    for segment in key.split("/"):
        quoted = urllib.parse.quote(segment, safe=_SAFE)
        if quoted.startswith("."):
            quoted = "%2E" + quoted[1:]
        segments.append(quoted)
    return "/".join(segments)


def decode_key(encoded: str) -> str:
    return "/".join(urllib.parse.unquote(part)
                    for part in encoded.split("/"))


class Backend(Protocol):
    """The minimal byte-store verbs an artifact backend must speak."""

    def get(self, key: str) -> Optional[bytes]:
        """The blob behind ``key``, or None if absent/unreadable."""
        ...

    def put(self, key: str, data: bytes, target: str = "artifact") -> None:
        """Atomically (re)write ``key``.  ``target`` names the artifact
        class for the chaos fault hook."""
        ...

    def delete(self, key: str) -> bool:
        """Remove ``key``; True if something was removed."""
        ...

    def rename(self, key: str, new_key: str) -> bool:
        """Move a blob aside (quarantine); True on success."""
        ...

    def list_keys(self, prefix: str = "") -> Iterator[str]:
        """All keys under ``prefix`` (decoded), in sorted order."""
        ...


class MemoryBackend:
    """Dict-backed backend: tests, and the S3 transliteration template."""

    def __init__(self):
        self._blobs: Dict[str, bytes] = {}

    def get(self, key: str) -> Optional[bytes]:
        return self._blobs.get(key)

    def put(self, key: str, data: bytes, target: str = "artifact") -> None:
        # The fault hook applies even in memory so chaos plans can
        # target artifact writes regardless of backend.
        written, failure = durable.get_fault_hook().filter_write(
            target, key, data)
        self._blobs[key] = bytes(written)
        if failure is not None:
            raise failure

    def delete(self, key: str) -> bool:
        return self._blobs.pop(key, None) is not None

    def rename(self, key: str, new_key: str) -> bool:
        blob = self._blobs.pop(key, None)
        if blob is None:
            return False
        self._blobs[new_key] = blob
        return True

    def list_keys(self, prefix: str = "") -> Iterator[str]:
        return iter(sorted(k for k in self._blobs if k.startswith(prefix)))


class LocalDirBackend:
    """Directory-backed backend with crash-consistent writes.

    Keys map to files under ``root`` through :func:`encode_key`.  Every
    ``put`` is atomic (temp + fsync + ``os.replace`` + directory
    fsync); opening the backend sweeps orphaned atomic-write temp files
    left by processes killed mid-write — the regression fixed here is
    that those ``.{name}.{pid}.tmp`` files used to accumulate forever.
    """

    def __init__(self, root: PathLike, sweep: bool = True):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.swept_tmps = 0
        if sweep:
            self.swept_tmps = self.sweep_orphans()

    def sweep_orphans(self) -> int:
        """Sweep orphaned temp files in every directory of the store."""
        removed = durable.sweep_orphan_tmps(self.root)
        for dirpath, _dirnames, _filenames in os.walk(self.root):
            if Path(dirpath) != self.root:
                removed += durable.sweep_orphan_tmps(dirpath)
        return removed

    def path_for(self, key: str) -> Path:
        return self.root / encode_key(key)

    def get(self, key: str) -> Optional[bytes]:
        try:
            return self.path_for(key).read_bytes()
        except OSError:
            return None

    def put(self, key: str, data: bytes, target: str = "artifact") -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        durable.atomic_write_bytes(path, data, target=target)

    def delete(self, key: str) -> bool:
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    def rename(self, key: str, new_key: str) -> bool:
        src = self.path_for(key)
        dst = self.path_for(new_key)
        try:
            dst.parent.mkdir(parents=True, exist_ok=True)
            os.replace(src, dst)
            return True
        except OSError:
            return False

    def list_keys(self, prefix: str = "") -> Iterator[str]:
        keys = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            base = Path(dirpath).relative_to(self.root)
            for name in filenames:
                if name.startswith(".") and name.endswith(".tmp"):
                    continue
                rel = str(base / name) if str(base) != "." else name
                key = decode_key(rel.replace(os.sep, "/"))
                if key.startswith(prefix):
                    keys.append(key)
        return iter(sorted(keys))
