"""Fig. 4: distribution of the 1000 longest timing paths across the pipeline.

Static timing analysis over the gate-level stage netlists of the core.
Expected shape (paper): every near-critical path belongs to the FPU; all
non-FPU stages keep comfortable slack under the studied voltage-reduction
levels.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

from repro.circuit.core_model import build_core_stages, is_fpu_stage
from repro.circuit.sta import (
    StaticTimingAnalysis,
    clock_period,
    path_distribution,
)
from repro.experiments import Option

TITLE = "Fig. 4 — distribution of the longest timing paths"

OPTIONS = (
    Option("k", int, 1000, "number of longest paths to collect"),
    Option("seed", int, 45, "netlist-generation seed"),
)


@dataclass
class Fig4Result:
    clock_ps: float
    paths_by_stage: Dict[str, int]
    critical_delay_by_stage: Dict[str, float]
    slack_by_stage: Dict[str, float]
    fpu_fraction: float

    @property
    def non_fpu_paths(self) -> int:
        return sum(n for stage, n in self.paths_by_stage.items()
                   if not is_fpu_stage(stage))


def run(context=None, k: int = 1000, seed: int = 45) -> Fig4Result:
    """STA the core and take the K longest paths (paper: K = 1000).

    Pure static analysis: ``context`` is accepted for API uniformity but
    unused (no workload traces are involved).
    """
    stages = build_core_stages(seed=seed)
    stage_list = list(stages.values())
    clock = clock_period(stage_list)
    paths = path_distribution(stage_list, k)
    counts = Counter(p.stage for p in paths)
    criticals = {
        name: StaticTimingAnalysis(netlist).critical_delay()
        for name, netlist in stages.items()
    }
    fpu_paths = sum(n for stage, n in counts.items() if is_fpu_stage(stage))
    return Fig4Result(
        clock_ps=clock,
        paths_by_stage=dict(counts),
        critical_delay_by_stage=criticals,
        slack_by_stage={name: clock - d for name, d in criticals.items()},
        fpu_fraction=fpu_paths / max(1, len(paths)),
    )


def render(result: Fig4Result) -> str:
    lines = [
        "Fig. 4 — distribution of the longest timing paths",
        f"  clock period (Eq. 1): {result.clock_ps:.1f} ps",
        f"  FPU share of the top paths: {result.fpu_fraction:.1%}",
        "",
        "  stage               critical (ps)   slack (ps)   top-K paths",
    ]
    for name, delay in sorted(result.critical_delay_by_stage.items(),
                              key=lambda kv: -kv[1]):
        lines.append(
            f"  {name:18s} {delay:12.1f} {result.slack_by_stage[name]:12.1f}"
            f" {result.paths_by_stage.get(name, 0):12d}"
            f"   {'FPU' if is_fpu_stage(name) else ''}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
