"""Fig. 8: WA-model per-bit BER per benchmark and VR level.

For every benchmark, trace-level DTA yields the per-bit error ratios of
each instruction type actually executed.  Expected shape (paper):
workloads differ wildly (mg's high bits near zero at VR15 while srad's
are orders of magnitude higher); mantissa bits carry most of the error
mass; each bit has its own ratio (multi-bit, non-uniform).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors.wa import WaModel
from repro.experiments import Option, comma_separated_names
from repro.experiments.context import (
    BENCHMARKS,
    ExperimentContext,
    ensure_context,
)
from repro.fpu.formats import FpOp

TITLE = "Fig. 8 — WA-model per-bit BER per benchmark"

OPTIONS = (
    Option("scale", str, "small", "workload scale (tiny/small/paper)"),
    Option("seed", int, 2021, "context seed"),
    Option("samples", int, 50_000, "characterisation samples per type"),
    Option("benchmarks", comma_separated_names, BENCHMARKS,
           "comma-separated benchmark subset"),
    Option("workers", int, None,
           "characterization worker processes (unset = legacy serial)"),
    Option("cache_dir", str, None,
           "content-addressed model cache directory (unset = no cache)"),
    Option("timing_backend", str, None,
           "gate-level DTA engine: event or bitparallel "
           "(unset = event; part of every model cache key)"),
)


@dataclass
class Fig8Result:
    #: benchmark -> point -> op mnemonic -> per-bit BER
    ber: Dict[str, Dict[str, Dict[str, np.ndarray]]]
    #: benchmark -> point -> aggregate region mass
    region_mass: Dict[str, Dict[str, Dict[str, float]]]


def run(context: Optional[ExperimentContext] = None,
        scale: str = "small", seed: int = 2021,
        samples: int = 50_000, benchmarks=None,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        timing_backend: Optional[str] = None) -> Fig8Result:
    context = ensure_context(context, scale=scale, seed=seed,
                             samples=samples, benchmarks=benchmarks,
                             workers=workers, cache_dir=cache_dir,
                             timing_backend=timing_backend)
    ber: Dict[str, Dict[str, Dict[str, np.ndarray]]] = {}
    mass: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name, model in context.wa.items():
        ber[name] = {}
        mass[name] = {}
        for point in context.points:
            per_op: Dict[str, np.ndarray] = {}
            regions = {"sign": 0.0, "exponent": 0.0, "mantissa": 0.0}
            for op, faults in model.faults[point.name].items():
                if faults.ber is None:
                    continue
                per_op[op.value] = faults.ber
                for bit in np.nonzero(faults.ber)[0]:
                    regions[op.fmt.bit_region(int(bit))] += float(
                        faults.ber[bit]
                    )
            ber[name][point.name] = per_op
            mass[name][point.name] = regions
    return Fig8Result(ber=ber, region_mass=mass)


def render(result: Fig8Result) -> str:
    lines = ["Fig. 8 — WA-model per-bit BER per benchmark"]
    for name, per_point in result.ber.items():
        for point, per_op in per_point.items():
            regions = result.region_mass[name][point]
            total = sum(float(b.sum()) for b in per_op.values())
            lines.append(
                f"  {name:8s} {point}: total BER mass = {total:.3e}  "
                f"(sign {regions['sign']:.2e} / exp {regions['exponent']:.2e}"
                f" / mant {regions['mantissa']:.2e})"
            )
            for mnemonic, bits in sorted(per_op.items()):
                nz = np.nonzero(bits)[0]
                if nz.size == 0:
                    continue
                worst = int(nz[np.argmax(bits[nz])])
                lines.append(
                    f"      {mnemonic:12s} {nz.size:2d} error bits, worst "
                    f"bit {worst:2d} @ {bits[worst]:.3e}"
                )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
