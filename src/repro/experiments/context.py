"""Shared experiment context: workloads, golden runs, characterised models.

Building the context once (golden runs + DTA characterisation for every
benchmark) is the model-development phase of Fig. 2; each experiment
driver then reuses it.  ``ExperimentContext.create`` is deterministic in
its seed, so every driver regenerates identical numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.campaign.executor import CampaignExecutor, ExecutorConfig
from repro.campaign.journal import RunJournal
from repro.campaign.runner import CampaignResult, CampaignRunner
from repro.circuit.liberty import OperatingPoint, VR15, VR20
from repro.errors import (
    DaModel,
    IaModel,
    WaModel,
    characterize_da,
    characterize_ia,
    characterize_wa,
)
from repro.errors.base import ErrorModel, WorkloadProfile
from repro.fpu.unit import FPU
from repro.workloads import WORKLOADS, make_workload

#: Table II benchmark order.
BENCHMARKS = ("sobel", "cg", "kmeans", "srad_v1", "hotspot", "is", "mg")


def ensure_context(context: Optional["ExperimentContext"],
                   scale: str = "small", seed: int = 2021,
                   samples: int = 50_000,
                   benchmarks: Optional[Sequence[str]] = None,
                   ) -> "ExperimentContext":
    """Reuse a supplied context or build one from the uniform options.

    Every registry driver funnels its ``scale`` / ``seed`` / ``samples``
    / ``benchmarks`` options through here, so the model-development
    phase is configured identically no matter which artifact asked for
    it.
    """
    if context is not None:
        return context
    return ExperimentContext.create(
        scale=scale, seed=seed, characterization_samples=samples,
        benchmarks=tuple(benchmarks) if benchmarks else BENCHMARKS,
    )


@dataclass
class ExperimentContext:
    """Everything the evaluation-phase drivers need, built once."""

    scale: str
    seed: int
    points: List[OperatingPoint]
    fpu: FPU
    runners: Dict[str, CampaignRunner]
    profiles: Dict[str, WorkloadProfile]
    da: DaModel
    ia: IaModel
    wa: Dict[str, WaModel]

    @classmethod
    def create(cls, scale: str = "small", seed: int = 2021,
               points: Optional[Sequence[OperatingPoint]] = None,
               characterization_samples: int = 50_000,
               benchmarks: Sequence[str] = BENCHMARKS,
               ) -> "ExperimentContext":
        """Model-development phase over the chosen benchmarks."""
        points = list(points) if points else [VR15, VR20]
        fpu = FPU()
        runners: Dict[str, CampaignRunner] = {}
        profiles: Dict[str, WorkloadProfile] = {}
        wa: Dict[str, WaModel] = {}
        for name in benchmarks:
            workload = make_workload(name, scale=scale, seed=seed)
            runner = CampaignRunner(workload, seed=seed)
            golden = runner.golden()
            runners[name] = runner
            profiles[name] = golden.profile
            wa[name] = characterize_wa(golden.profile, points, fpu=fpu)
        ia = characterize_ia(points, fpu=fpu,
                             samples_per_op=characterization_samples,
                             seed=seed)
        da = characterize_da(list(profiles.values()), points, fpu=fpu,
                             sample_per_point=characterization_samples,
                             seed=seed)
        return cls(scale=scale, seed=seed, points=points, fpu=fpu,
                   runners=runners, profiles=profiles, da=da, ia=ia, wa=wa)

    @property
    def benchmarks(self) -> List[str]:
        return list(self.runners)

    def models_for(self, benchmark: str) -> List[ErrorModel]:
        """The three compared models (Table I order) for one benchmark."""
        return [self.da, self.ia, self.wa[benchmark]]

    def run_campaigns(self, runs: int,
                      benchmarks: Optional[Sequence[str]] = None,
                      config: Optional[ExecutorConfig] = None,
                      journal: Optional[RunJournal] = None,
                      ) -> List[CampaignResult]:
        """All (benchmark x model x point) campaign cells (Figs. 9/10).

        ``config`` selects the fault-tolerance posture (worker count,
        watchdog, retries); one ``journal`` is shared across every cell
        so a killed multi-benchmark campaign resumes as a whole.
        """
        owns_journal = False
        if journal is None and config is not None and config.journal_path:
            journal = RunJournal.open(config.journal_path, seed=self.seed,
                                      resume=config.resume)
            owns_journal = True
        results: List[CampaignResult] = []
        try:
            for name in (benchmarks or self.benchmarks):
                executor = CampaignExecutor(self.runners[name],
                                            config=config, journal=journal)
                for model in self.models_for(name):
                    for point in self.points:
                        results.append(
                            executor.run_cell(model, point, runs=runs)
                        )
        finally:
            if owns_journal:
                journal.close()
        return results
