"""Shared experiment context: workloads, golden runs, characterised models.

Building the context once (golden runs + DTA characterisation for every
benchmark) is the model-development phase of Fig. 2; each experiment
driver then reuses it.  ``ExperimentContext.create`` is deterministic in
its seed, so every driver regenerates identical numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.campaign.adaptive import (
    AdaptiveConfig,
    AdaptiveReport,
    ImportanceModel,
    run_adaptive_cells,
)
from repro.campaign.executor import CampaignExecutor, ExecutorConfig
from repro.campaign.fastforward import FastForwardConfig
from repro.campaign.journal import RunJournal
from repro.campaign.runner import CampaignResult, CampaignRunner
from repro.circuit.liberty import OperatingPoint, VR15, VR20
from repro.errors import (
    CharacterizationPipeline,
    DaModel,
    IaModel,
    PipelineConfig,
    WaModel,
    characterize_da,
    characterize_ia,
    characterize_wa,
)
from repro.errors.base import ErrorModel, WorkloadProfile
from repro.fpu.unit import DEFAULT_DTA_BATCH, FPU
from repro.workloads import WORKLOADS, make_workload

#: Table II benchmark order.
BENCHMARKS = ("sobel", "cg", "kmeans", "srad_v1", "hotspot", "is", "mg")


def _make_pipeline(fpu: FPU,
                   workers: Optional[int],
                   chunk: Optional[int],
                   cache_dir: Optional[Union[str, Path]],
                   timing_backend: Optional[str] = None,
                   ) -> Optional[CharacterizationPipeline]:
    """Build a characterization pipeline when any knob is set.

    All knobs ``None`` means "legacy serial path" — the context then
    reproduces the historical model numbers byte for byte.  The timing
    backend rides along into the pipeline config (and hence every model
    cache key) whenever a pipeline is built.
    """
    if workers is None and chunk is None and cache_dir is None:
        return None
    config = PipelineConfig(
        workers=workers or 0,
        chunk=chunk if chunk is not None else DEFAULT_DTA_BATCH,
        cache_dir=Path(cache_dir) if cache_dir is not None else None,
        use_cache=cache_dir is not None,
        timing_backend=timing_backend or fpu.timing_backend,
    )
    return CharacterizationPipeline(config, fpu=fpu)


def ensure_context(context: Optional["ExperimentContext"],
                   scale: str = "small", seed: int = 2021,
                   samples: int = 50_000,
                   benchmarks: Optional[Sequence[str]] = None,
                   workers: Optional[int] = None,
                   chunk: Optional[int] = None,
                   cache_dir: Optional[Union[str, Path]] = None,
                   timing_backend: Optional[str] = None,
                   ) -> "ExperimentContext":
    """Reuse a supplied context or build one from the uniform options.

    Every registry driver funnels its ``scale`` / ``seed`` / ``samples``
    / ``benchmarks`` options through here, so the model-development
    phase is configured identically no matter which artifact asked for
    it.  ``workers`` / ``chunk`` / ``cache_dir`` opt the build into the
    parallel, content-addressed characterization pipeline
    (:mod:`repro.errors.pipeline`); all three left ``None`` keeps the
    legacy serial path.  ``timing_backend`` selects the gate-level DTA
    engine identity (``event`` / ``bitparallel``) carried by the FPU's
    timing model and by every pipeline cache key.
    """
    if context is not None:
        return context
    return ExperimentContext.create(
        scale=scale, seed=seed, characterization_samples=samples,
        benchmarks=tuple(benchmarks) if benchmarks else BENCHMARKS,
        workers=workers, chunk=chunk, cache_dir=cache_dir,
        timing_backend=timing_backend,
    )


@dataclass
class ExperimentContext:
    """Everything the evaluation-phase drivers need, built once."""

    scale: str
    seed: int
    points: List[OperatingPoint]
    fpu: FPU
    runners: Dict[str, CampaignRunner]
    profiles: Dict[str, WorkloadProfile]
    da: DaModel
    ia: IaModel
    wa: Dict[str, WaModel]
    #: The characterization pipeline the models were built with (``None``
    #: when the legacy serial path was used).
    pipeline: Optional[CharacterizationPipeline] = None
    #: Stop-decision/budget report of the most recent adaptive
    #: ``run_campaigns`` call (``None`` until one runs adaptively).
    adaptive_report: Optional[AdaptiveReport] = None

    @classmethod
    def create(cls, scale: str = "small", seed: int = 2021,
               points: Optional[Sequence[OperatingPoint]] = None,
               characterization_samples: int = 50_000,
               benchmarks: Sequence[str] = BENCHMARKS,
               pipeline: Optional[CharacterizationPipeline] = None,
               workers: Optional[int] = None,
               chunk: Optional[int] = None,
               cache_dir: Optional[Union[str, Path]] = None,
               fastforward: Optional[FastForwardConfig] = None,
               timing_backend: Optional[str] = None,
               ) -> "ExperimentContext":
        """Model-development phase over the chosen benchmarks.

        Pass ``pipeline`` (or any of ``workers`` / ``chunk`` /
        ``cache_dir``, which build one) to route all three
        characterisations through the parallel, cache-aware engine;
        the WA models stay bit-identical to the serial path, and cached
        artifacts make repeat builds near-free.  ``fastforward``
        configures the campaign runners' snapshot engine (``None`` keeps
        the default-on configuration; pass
        ``FastForwardConfig(enabled=False)`` for full replay).
        ``timing_backend`` binds the FPU's timing model (and any built
        pipeline's cache keys) to a gate-level engine identity.
        """
        points = list(points) if points else [VR15, VR20]
        fpu = FPU(timing_backend=timing_backend)
        if pipeline is None:
            pipeline = _make_pipeline(fpu, workers, chunk, cache_dir,
                                      timing_backend)
        runners: Dict[str, CampaignRunner] = {}
        profiles: Dict[str, WorkloadProfile] = {}
        wa: Dict[str, WaModel] = {}
        for name in benchmarks:
            workload = make_workload(name, scale=scale, seed=seed)
            runner = CampaignRunner(workload, seed=seed,
                                    fastforward=fastforward)
            golden = runner.golden()
            runners[name] = runner
            profiles[name] = golden.profile
            wa[name] = characterize_wa(golden.profile, points, fpu=fpu,
                                       pipeline=pipeline)
        ia = characterize_ia(points, fpu=fpu,
                             samples_per_op=characterization_samples,
                             seed=seed, pipeline=pipeline)
        da = characterize_da(list(profiles.values()), points, fpu=fpu,
                             sample_per_point=characterization_samples,
                             seed=seed, pipeline=pipeline)
        return cls(scale=scale, seed=seed, points=points, fpu=fpu,
                   runners=runners, profiles=profiles, da=da, ia=ia, wa=wa,
                   pipeline=pipeline)

    @property
    def benchmarks(self) -> List[str]:
        return list(self.runners)

    def models_for(self, benchmark: str) -> List[ErrorModel]:
        """The three compared models (Table I order) for one benchmark."""
        return [self.da, self.ia, self.wa[benchmark]]

    def run_campaigns(self, runs: int,
                      benchmarks: Optional[Sequence[str]] = None,
                      config: Optional[ExecutorConfig] = None,
                      journal: Optional[RunJournal] = None,
                      adaptive: Optional[AdaptiveConfig] = None,
                      importance: bool = False,
                      ) -> List[CampaignResult]:
        """All (benchmark x model x point) campaign cells (Figs. 9/10).

        ``config`` selects the fault-tolerance posture (worker count,
        watchdog, retries); one ``journal`` is shared across every cell
        so a killed multi-benchmark campaign resumes as a whole.

        ``adaptive`` switches every cell to sequential CI-target
        sampling with ``runs`` as the per-cell budget ceiling; saved
        runs are reallocated across cells and the stop-decision report
        lands in :attr:`adaptive_report`.  ``importance`` additionally
        wraps each WA model in an
        :class:`~repro.campaign.adaptive.ImportanceModel` (victims drawn
        from the timing model's per-event error mass, AVM reweighted by
        Horvitz–Thompson so it stays unbiased).
        """
        if importance and adaptive is None:
            raise ValueError(
                "importance sampling requires an AdaptiveConfig "
                "(pass adaptive=AdaptiveConfig(importance=True))")
        owns_journal = False
        if journal is None and config is not None and config.journal_path:
            journal = RunJournal.open(config.journal_path, seed=self.seed,
                                      resume=config.resume)
            owns_journal = True
        results: List[CampaignResult] = []
        try:
            cells = []
            for name in (benchmarks or self.benchmarks):
                executor = CampaignExecutor(self.runners[name],
                                            config=config, journal=journal)
                for model in self.models_for(name):
                    if importance and getattr(model, "workload_aware",
                                              False):
                        model = ImportanceModel(model)
                    for point in self.points:
                        if adaptive is not None:
                            cells.append((executor, model, point))
                        else:
                            results.append(
                                executor.run_cell(model, point, runs=runs)
                            )
            if adaptive is not None:
                results, report = run_adaptive_cells(cells, adaptive,
                                                     runs=runs)
                self.adaptive_report = report
        finally:
            if owns_journal:
                journal.close()
        return results
