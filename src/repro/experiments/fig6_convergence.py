"""Fig. 6: BER convergence with characterisation sample size (Eq. 3).

Takes the fp-mul operand trace of the ``is`` program, computes the per-bit
error ratio of the full trace at VR20, then re-estimates it from random
subsets of increasing size K and reports the average absolute error.
Expected shape (paper): AE falls steeply with K; at the largest K the
subset BER is nearly identical to the full-trace BER, justifying the
1 M-operand characterisation budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuit.liberty import VR15, VR20, OperatingPoint
from repro.errors.base import WorkloadProfile
from repro.errors.pipeline import CharacterizationPipeline, PipelineConfig
from repro.experiments import Option, comma_separated_ints
from repro.fpu.formats import FpOp, op_by_mnemonic
from repro.fpu.unit import FPU
from repro.utils.rng import RngStream
from repro.utils.stats import average_absolute_error

TITLE = "Fig. 6 — BER convergence with characterisation sample size"

OPTIONS = (
    Option("benchmark", str, "is",
           "benchmark whose trace is analysed"),
    Option("sample_sizes", comma_separated_ints, (1_000, 10_000, 100_000),
           "comma-separated subset sizes K"),
    Option("op", op_by_mnemonic, FpOp.MUL_D.value,
           "instruction type (mnemonic, e.g. fp.mul.d)"),
    Option("point", lambda name: {"VR15": VR15, "VR20": VR20}[name], "VR20",
           "operating point (VR15 or VR20)"),
    Option("seed", int, 2021, "trace/subset seed"),
    Option("scale", str, "small", "workload scale (tiny/small/paper)"),
    Option("workers", int, 0,
           "DTA worker processes (0 = serial; any count is bit-identical)"),
)


@dataclass
class Fig6Result:
    op: FpOp
    point: str
    full_trace_size: int
    full_ber: np.ndarray
    sampled_ber: Dict[int, np.ndarray]
    absolute_error: Dict[int, float]


def _per_bit_ber(fpu: FPU, op: FpOp, a, b, point,
                 pipeline: Optional[CharacterizationPipeline] = None
                 ) -> np.ndarray:
    if pipeline is not None:
        # Pure count reduction: bit-identical to the full-batch path
        # below for any chunk size or worker count.
        return pipeline.per_bit_ber(op, a, b, [point])[point.name]
    masks = fpu.dta(op, a, b, [point]).masks[point.name]
    width = op.fmt.width
    ber = np.zeros(width)
    for bit in range(width):
        ber[bit] = np.count_nonzero(
            (masks >> np.uint64(bit)) & np.uint64(1)
        ) / masks.size
    return ber


def run(context=None,
        profile: Optional[WorkloadProfile] = None,
        benchmark: str = "is",
        sample_sizes: Sequence[int] = (1_000, 10_000, 100_000),
        op: FpOp = FpOp.MUL_D,
        point: OperatingPoint = VR20,
        seed: int = 2021,
        scale: str = "small",
        workers: int = 0) -> Fig6Result:
    """Needs one benchmark's trace: from ``profile`` when given, else the
    shared ``context``, else a fresh golden run of ``benchmark``."""
    if profile is None and context is not None:
        profile = context.profiles[benchmark]
    if profile is None:
        from repro.campaign.runner import CampaignRunner
        from repro.workloads import make_workload

        runner = CampaignRunner(
            make_workload(benchmark, scale=scale, seed=seed), seed=seed
        )
        profile = runner.golden().profile
    if op not in profile.trace_by_op:
        raise ValueError(f"profile {profile.name!r} has no {op} trace")
    a, b = profile.trace_by_op[op]
    fpu = FPU()
    pipeline = context.pipeline if context is not None else None
    if pipeline is None and workers:
        pipeline = CharacterizationPipeline(
            PipelineConfig(workers=workers, use_cache=False), fpu=fpu)
    full_ber = _per_bit_ber(fpu, op, a, b, point, pipeline)
    rng = RngStream(seed, "fig6")
    sampled: Dict[int, np.ndarray] = {}
    errors: Dict[int, float] = {}
    for k in sample_sizes:
        take = min(k, a.size)
        # Without replacement, like extracting K distinct instructions
        # from the trace; at K == trace size the estimate is exact.
        sel = rng.choice(a.size, size=take, replace=False)
        ber = _per_bit_ber(fpu, op, a[sel],
                           b[sel] if b is not None else None, point,
                           pipeline)
        sampled[k] = ber
        errors[k] = average_absolute_error(full_ber, ber)
    return Fig6Result(op=op, point=point.name, full_trace_size=int(a.size),
                      full_ber=full_ber, sampled_ber=sampled,
                      absolute_error=errors)


def render(result: Fig6Result) -> str:
    lines = [
        f"Fig. 6 — BER convergence for {result.op} of 'is' at {result.point}",
        f"  full trace: {result.full_trace_size} instructions",
    ]
    for k in sorted(result.sampled_ber):
        lines.append(f"  K = {k:>9,d}: average absolute error (Eq. 3) = "
                     f"{result.absolute_error[k]:.4f}")
    nz = np.nonzero(result.full_ber)[0]
    if nz.size:
        lines.append("  full-trace BER (non-zero bits, MSB-first):")
        for bit in nz[::-1][:16]:
            lines.append(f"    bit {bit:2d}: {result.full_ber[bit]:.3e}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
