"""Fig. 10: timing-error injection ratios across benchmarks and models.

Compares the error ratio each model injects with (Eq. 2).  Expected shape
(paper): every model injects more at VR20 than VR15 (timing wall); WA
ratios vary per benchmark while DA is flat; the DA and IA ratios diverge
from WA's by large average fold-changes (paper: ~250x and ~230x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.campaign.avm import error_ratio_divergence
from repro.campaign.report import error_ratio_table
from repro.campaign.runner import CampaignResult
from repro.experiments import Option, comma_separated_names
from repro.experiments.context import (
    BENCHMARKS,
    ExperimentContext,
    ensure_context,
)

TITLE = "Fig. 10 — injected timing-error ratios across benchmarks/models"

OPTIONS = (
    Option("scale", str, "small", "workload scale (tiny/small/paper)"),
    Option("seed", int, 2021, "context seed"),
    Option("samples", int, 50_000, "characterisation samples per type"),
    Option("benchmarks", comma_separated_names, BENCHMARKS,
           "comma-separated benchmark subset"),
)


@dataclass
class Fig10Result:
    results: List[CampaignResult]
    divergence: Dict[str, float]   # model -> geomean fold vs WA

    def ratio(self, workload: str, model: str, point: str) -> float:
        for result in self.results:
            if (result.workload, result.model, result.point) == (
                    workload, model, point):
                return result.error_ratio
        raise KeyError((workload, model, point))


def run(context: Optional[ExperimentContext] = None,
        campaign_results: Optional[List[CampaignResult]] = None,
        scale: str = "small", seed: int = 2021,
        samples: int = 50_000, benchmarks=None) -> Fig10Result:
    """Reuses Fig. 9 campaign results when provided (same cells)."""
    if campaign_results is None:
        context = ensure_context(context, scale=scale, seed=seed,
                                 samples=samples, benchmarks=benchmarks)
        # Error ratios are campaign-size independent; tiny campaigns do.
        campaign_results = context.run_campaigns(runs=1)
    divergence = error_ratio_divergence(campaign_results)
    return Fig10Result(results=campaign_results, divergence=divergence)


def render(result: Fig10Result) -> str:
    lines = ["Fig. 10 — injected timing-error ratios",
             error_ratio_table(result.results), ""]
    for model, fold in sorted(result.divergence.items()):
        paper = {"DA": "~250x", "IA": "~230x"}.get(model, "")
        lines.append(
            f"  {model}-model average fold-change vs WA: {fold:,.0f}x"
            + (f"   (paper: {paper})" if paper else "")
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
