"""Section V.C: Application Vulnerability Metric analysis.

Three parts, mirroring the paper's discussion:

1. AVM per (benchmark, model, VR level) and the average AVM divergence of
   DA/IA vs WA (paper: 49.8 % on average),
2. AVM-guided Vmin selection per benchmark with the resulting power and
   energy savings (paper: k-means can run at 0.88 V -> up to 56 % saving,
   while DA would allow only ~10 % reduction -> 21 %),
3. energy savings when an error-prevention/replay mitigation is enabled
   (paper: up to 20 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.campaign.adaptive import AdaptiveConfig
from repro.campaign.avm import EnergyAnalysis, avm_divergence
from repro.campaign.runner import CampaignResult
from repro.circuit.liberty import NOMINAL, OperatingPoint, TECHNOLOGY
from repro.errors import characterize_wa
from repro.experiments import Option, comma_separated_names, flag_bool
from repro.experiments.context import (
    BENCHMARKS,
    ExperimentContext,
    ensure_context,
)

TITLE = "Section V.C — AVM analysis, Vmin selection, energy savings"

OPTIONS = (
    Option("runs", int, 200, "injection runs per campaign cell"),
    Option("scale", str, "small", "workload scale (tiny/small/paper)"),
    Option("seed", int, 2021, "context/campaign seed"),
    Option("samples", int, 50_000, "characterisation samples per type"),
    Option("benchmarks", comma_separated_names, BENCHMARKS,
           "comma-separated benchmark subset"),
    Option("workers", int, None,
           "characterization worker processes (unset = legacy serial)"),
    Option("cache_dir", str, None,
           "content-addressed model cache directory (unset = no cache)"),
    Option("timing_backend", str, None,
           "gate-level DTA engine: event or bitparallel "
           "(unset = event; part of every model cache key)"),
    Option("adaptive", flag_bool, False,
           "stop each cell at the CI target instead of fixed-N"),
    Option("ci_target", float, 0.03,
           "adaptive stop half-width (the paper's ±margin)"),
    Option("min_runs", int, 100, "adaptive floor: never stop below this"),
    Option("importance", flag_bool, False,
           "importance-sample WA victims (HT-reweighted AVM)"),
)


@dataclass
class VminChoice:
    benchmark: str
    model: str
    point: OperatingPoint
    power_saving: float
    energy_saving: float


@dataclass
class AvmResult:
    avm_table: Dict[Tuple[str, str, str], float]
    divergence: Dict[str, float]
    vmin: List[VminChoice]
    mitigation: Dict[str, Tuple[str, float]]  # benchmark -> (point, saving)


def run(context: Optional[ExperimentContext] = None,
        campaign_results: Optional[List[CampaignResult]] = None,
        runs: int = 200, scale: str = "small",
        seed: int = 2021, samples: int = 50_000,
        benchmarks=None, workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        timing_backend: Optional[str] = None,
        adaptive: bool = False, ci_target: float = 0.03,
        min_runs: int = 100, importance: bool = False) -> AvmResult:
    context = ensure_context(context, scale=scale, seed=seed,
                             samples=samples, benchmarks=benchmarks,
                             workers=workers, cache_dir=cache_dir,
                             timing_backend=timing_backend)
    if campaign_results is None:
        config = None
        if adaptive or importance:
            config = AdaptiveConfig(ci_target=ci_target,
                                    min_runs=min_runs,
                                    importance=importance)
        campaign_results = context.run_campaigns(runs, adaptive=config,
                                                 importance=importance)

    table = {
        (r.workload, r.model, r.point): r.avm for r in campaign_results
    }
    divergence = avm_divergence(campaign_results)

    energy = EnergyAnalysis()
    vmin: List[VminChoice] = []
    by_model: Dict[Tuple[str, str], List[Tuple[OperatingPoint, float]]] = {}
    for result in campaign_results:
        point = next(p for p in context.points if p.name == result.point)
        by_model.setdefault((result.workload, result.model), []).append(
            (point, result.avm)
        )
    for (benchmark, model), sweep in sorted(by_model.items()):
        sweep = [(NOMINAL, 0.0)] + sorted(sweep, key=lambda s: -s[0].voltage)
        choice = energy.safe_point(sweep)
        vmin.append(VminChoice(
            benchmark=benchmark, model=model, point=choice,
            power_saving=energy.power_saving(choice),
            energy_saving=energy.energy_saving_with_guardband(choice),
        ))

    # Mitigation: error prevention lets the core undervolt through
    # non-zero-ER points by paying a per-error replay cost; use the WA
    # ratios (the accurate ones) per benchmark.
    mitigation: Dict[str, Tuple[str, float]] = {}
    for name, model in context.wa.items():
        profile = context.profiles[name]
        sweep = [(NOMINAL, 0.0)] + [
            (p, model.error_ratio(profile, p)) for p in context.points
        ]
        point, saving = energy.best_mitigated_point(sweep)
        mitigation[name] = (point.name, saving)

    return AvmResult(avm_table=table, divergence=divergence, vmin=vmin,
                     mitigation=mitigation)


def render(result: AvmResult) -> str:
    lines = ["Section V.C — Application Vulnerability Metric analysis", ""]
    lines.append("  AVM per (benchmark, model, VR):")
    for (benchmark, model, point), avm in sorted(result.avm_table.items()):
        lines.append(f"    {benchmark:8s} {model:3s} {point}: {avm:6.1%}")
    lines.append("")
    for model, delta in sorted(result.divergence.items()):
        lines.append(
            f"  {model}-model average AVM divergence vs WA: "
            f"{delta:.1f} points (paper: 49.8% average for DA/IA)"
        )
    lines.append("")
    lines.append("  AVM-guided Vmin and savings (AVM target = 0):")
    for choice in result.vmin:
        lines.append(
            f"    {choice.benchmark:8s} {choice.model:3s} -> "
            f"{choice.point.name} ({choice.point.voltage:.3f} V): "
            f"power -{choice.power_saving:.0%}, "
            f"energy -{choice.energy_saving:.0%}"
        )
    lines.append("")
    lines.append("  Best operating point with error-prevention mitigation:")
    for name, (point, saving) in sorted(result.mitigation.items()):
        lines.append(f"    {name:8s} -> {point}: energy saving "
                     f"{saving:.0%} (paper: up to 20%)")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
