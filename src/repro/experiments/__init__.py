"""Per-artifact reproduction drivers.

One module per table/figure of the paper's evaluation (see DESIGN.md's
per-experiment index).  Every driver exposes ``run(...)`` returning
structured data plus a ``render(result)`` producing the paper-shaped text
report; ``python -m repro.experiments.<driver>`` prints it.
"""

from repro.experiments.context import ExperimentContext

__all__ = ["ExperimentContext"]
