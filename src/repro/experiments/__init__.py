"""Per-artifact reproduction drivers behind one uniform Experiment API.

One module per table/figure of the paper's evaluation (see DESIGN.md's
per-experiment index).  Every driver implements the same protocol:

- ``run(context: ExperimentContext | None = None, **options)`` returning
  structured data (each module's ``*Result`` dataclass),
- ``render(result)`` producing the paper-shaped text report,
- ``OPTIONS``: the declared, typed options ``run`` accepts, and
- ``TITLE``: the one-line artifact description.

:data:`REGISTRY` maps experiment ids to :class:`ModuleExperiment`
adapters over those modules; the CLI's generic ``repro experiment <id>
[--opt value ...]`` path is driven entirely by it — adding an experiment
is one module plus one registry line, with no dispatch branching
anywhere.  ``python -m repro.experiments.<driver>`` still prints each
artifact directly.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.experiments.context import ExperimentContext

__all__ = [
    "ExperimentContext",
    "ModuleExperiment",
    "Option",
    "REGISTRY",
    "get_experiment",
    "run_experiment",
    "comma_separated_ints",
    "comma_separated_names",
    "flag_bool",
]


def comma_separated_ints(text: str) -> Tuple[int, ...]:
    """CLI parser for list options: ``"100,1000"`` -> ``(100, 1000)``."""
    return tuple(int(part) for part in text.split(",") if part)


def flag_bool(text: str) -> bool:
    """CLI parser for boolean options: ``--adaptive true`` / ``0`` / ``no``."""
    lowered = text.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"expected a boolean, got {text!r}")


def comma_separated_names(text: str) -> Tuple[str, ...]:
    """CLI parser for name lists: ``"cg,kmeans"`` -> ``("cg", "kmeans")``."""
    return tuple(part.strip() for part in text.split(",") if part.strip())


@dataclass(frozen=True)
class Option:
    """One declared option of an experiment's ``run``.

    ``parse`` converts the CLI string form; ``default`` is documentation
    (the authoritative default lives in the driver's ``run`` signature,
    which applies when the option is not passed at all).
    """

    name: str
    parse: Callable[[str], Any]
    default: Any
    help: str = ""

    @property
    def flag(self) -> str:
        return "--" + self.name.replace("_", "-")


@dataclass
class ModuleExperiment:
    """Adapter presenting one driver module as an Experiment.

    Modules are imported lazily so listing the registry (``repro list``)
    stays instant and free of heavy numpy work.
    """

    id: str
    module_path: str
    _module: Any = field(default=None, repr=False, compare=False)

    def module(self):
        if self._module is None:
            self._module = importlib.import_module(self.module_path)
        return self._module

    @property
    def title(self) -> str:
        return getattr(self.module(), "TITLE", self.id)

    @property
    def options(self) -> Tuple[Option, ...]:
        return tuple(getattr(self.module(), "OPTIONS", ()))

    def run(self, context: Optional[ExperimentContext] = None, **options):
        return self.module().run(context=context, **options)

    def render(self, result) -> str:
        return self.module().render(result)

    # -- CLI support ---------------------------------------------------------
    def parse_cli(self, tokens) -> Dict[str, Any]:
        """Parse ``--opt value`` tokens against the declared options.

        Only explicitly provided options are returned, so the driver's
        own ``run`` defaults stay authoritative.  Unknown flags raise
        ``SystemExit`` with the experiment's own usage text.
        """
        import argparse

        parser = argparse.ArgumentParser(
            prog=f"repro experiment {self.id}",
            description=self.title,
        )
        for option in self.options:
            parser.add_argument(option.flag, dest=option.name,
                                type=option.parse,
                                default=argparse.SUPPRESS,
                                help=f"{option.help} "
                                     f"(default: {option.default})")
        return vars(parser.parse_args(list(tokens)))

    def describe_options(self) -> str:
        lines = [f"{self.id} — {self.title}"]
        if not self.options:
            lines.append("  (no options)")
        for option in self.options:
            lines.append(f"  {option.flag:<20} {option.help} "
                         f"(default: {option.default})")
        return "\n".join(lines)


#: Experiment id -> adapter, in the paper's artifact order.
REGISTRY: Dict[str, ModuleExperiment] = {
    spec.id: spec for spec in (
        ModuleExperiment("fig4", "repro.experiments.fig4_paths"),
        ModuleExperiment("fig5", "repro.experiments.fig5_bitflips"),
        ModuleExperiment("fig6", "repro.experiments.fig6_convergence"),
        ModuleExperiment("fig7", "repro.experiments.fig7_ia"),
        ModuleExperiment("fig8", "repro.experiments.fig8_wa"),
        ModuleExperiment("fig9", "repro.experiments.fig9_outcomes"),
        ModuleExperiment("fig10", "repro.experiments.fig10_error_ratio"),
        ModuleExperiment("table1", "repro.experiments.table1_models"),
        ModuleExperiment("table2", "repro.experiments.table2_benchmarks"),
        ModuleExperiment("avm", "repro.experiments.avm_analysis"),
    )
}


def get_experiment(experiment_id: str) -> ModuleExperiment:
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(sorted(REGISTRY))}"
        ) from None


def run_experiment(experiment_id: str,
                   context: Optional[ExperimentContext] = None,
                   **options):
    """Run one experiment by id (the library-side generic path)."""
    return get_experiment(experiment_id).run(context=context, **options)
