"""Table I: overview of the compared error-injection models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.campaign.report import feature_matrix
from repro.errors.da import DaModel
from repro.errors.ia import IaModel
from repro.errors.wa import WaModel

TITLE = "Table I — error-model feature overview"

OPTIONS = ()


@dataclass
class Table1Result:
    rows: List[Dict[str, object]]
    #: "<kind>: <provenance>" lines when built from characterised models.
    provenance: List[str] = field(default_factory=list)


def run(context=None) -> Table1Result:
    """Definitional feature matrix.

    With a shared ``context``, the rows come from its characterised
    models (same features, but the result also carries their provenance
    lines); without one, definitional placeholder models are used.
    """
    if context is not None:
        models = [context.da, context.ia,
                  next(iter(context.wa.values()))]
        provenance = [
            f"{model.name}: {model.provenance.describe()}"
            for model in models
            if getattr(model, "provenance", None) is not None
        ]
        return Table1Result(rows=[m.feature_row() for m in models],
                            provenance=provenance)
    models = [
        DaModel({"VR15": 1e-3, "VR20": 1e-2}),
        IaModel({"VR15": {}, "VR20": {}}),
        WaModel("any", {"VR15": {}, "VR20": {}}),
    ]
    return Table1Result(rows=[m.feature_row() for m in models])


def render(result: Table1Result) -> str:
    class _Rowed:
        def __init__(self, row):
            self._row = row

        def feature_row(self):
            return self._row

    text = ("Table I — error-model feature overview\n"
            + feature_matrix(_Rowed(row) for row in result.rows))
    if result.provenance:
        text += "\n  characterised from:"
        for line in result.provenance:
            text += f"\n    {line}"
    return text


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
