"""Table I: overview of the compared error-injection models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.campaign.report import feature_matrix
from repro.errors.da import DaModel
from repro.errors.ia import IaModel
from repro.errors.wa import WaModel

TITLE = "Table I — error-model feature overview"

OPTIONS = ()


@dataclass
class Table1Result:
    rows: List[Dict[str, object]]


def run(context=None) -> Table1Result:
    """Definitional feature matrix; ``context`` accepted for uniformity."""
    models = [
        DaModel({"VR15": 1e-3, "VR20": 1e-2}),
        IaModel({"VR15": {}, "VR20": {}}),
        WaModel("any", {"VR15": {}, "VR20": {}}),
    ]
    return Table1Result(rows=[m.feature_row() for m in models])


def render(result: Table1Result) -> str:
    class _Rowed:
        def __init__(self, row):
            self._row = row

        def feature_row(self):
            return self._row

    return ("Table I — error-model feature overview\n"
            + feature_matrix(_Rowed(row) for row in result.rows))


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
