"""Fig. 7: IA-model per-bit injection probabilities per instruction type.

Characterises the IA-model on uniformly distributed random operands and
reports each type's error ratio and unconditional per-bit injection
probabilities at VR15/VR20.  Expected shape (paper): fp-mul most
error-prone; at VR15 only fp-mul and fp-sub can fail; fp-div and fp-add
join at VR20; conversions and all single-precision instructions are
error-free at both levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.circuit.liberty import VR15, VR20
from repro.errors.characterize import characterize_ia
from repro.errors.ia import IaModel
from repro.experiments import Option
from repro.fpu.formats import ALL_OPS, FpOp

TITLE = "Fig. 7 — IA-model bit error-injection probabilities"

OPTIONS = (
    Option("samples_per_op", int, 100_000,
           "random operand samples per instruction type"),
    Option("seed", int, 2021, "characterisation seed"),
)


@dataclass
class Fig7Result:
    model: IaModel
    error_ratios: Dict[str, Dict[FpOp, float]]
    ber: Dict[str, Dict[FpOp, np.ndarray]]   # unconditional P(bit injected)


def run(context=None, samples_per_op: int = 100_000, seed: int = 2021,
        model: Optional[IaModel] = None) -> Fig7Result:
    points = [VR15, VR20]
    if model is None and context is not None:
        model = context.ia
    if model is None:
        model = characterize_ia(points, samples_per_op=samples_per_op,
                                seed=seed)
    ratios: Dict[str, Dict[FpOp, float]] = {}
    ber: Dict[str, Dict[FpOp, np.ndarray]] = {}
    for point in points:
        stats = model.stats[point.name]
        ratios[point.name] = {op: st.error_ratio for op, st in stats.items()}
        ber[point.name] = {op: st.unconditional_ber()
                           for op, st in stats.items()}
    return Fig7Result(model=model, error_ratios=ratios, ber=ber)


def render(result: Fig7Result) -> str:
    lines = ["Fig. 7 — IA-model bit error-injection probabilities"]
    for point, ratios in result.error_ratios.items():
        lines.append(f"  {point}:")
        for op in ALL_OPS:
            ratio = ratios.get(op, 0.0)
            flag = "" if ratio else "   (error-free)"
            lines.append(f"    {op.value:12s} ER = {ratio:.3e}{flag}")
            if ratio:
                ber = result.ber[point][op]
                nz = np.nonzero(ber)[0]
                regions = {"sign": 0.0, "exponent": 0.0, "mantissa": 0.0}
                for bit in nz:
                    regions[op.fmt.bit_region(int(bit))] += ber[bit]
                lines.append(
                    f"        region mass: sign={regions['sign']:.2e} "
                    f"exp={regions['exponent']:.2e} "
                    f"mant={regions['mantissa']:.2e}"
                )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
