"""Fig. 5: number of bit flips at faulty instruction outputs (VR15/VR20).

DTA over random operands for all double-precision instruction types;
histogram of popcount(bitmask) over the faulty instructions.  Expected
shape (paper): timing errors are multi-bit in the majority of cases
(64.5 % on average across the two VR levels), unlike single-bit soft
errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.circuit.liberty import VR15, VR20
from repro.errors.characterize import random_operands
from repro.errors.pipeline import CharacterizationPipeline, PipelineConfig
from repro.experiments import Option
from repro.fpu.formats import OPS_DOUBLE
from repro.fpu.unit import FPU
from repro.utils.bitops import count_ones
from repro.utils.rng import RngStream

TITLE = "Fig. 5 — bit flips per faulty instruction output"

OPTIONS = (
    Option("samples_per_op", int, 100_000,
           "random operand pairs per instruction type"),
    Option("seed", int, 2021, "operand-generation seed"),
    Option("workers", int, 0,
           "DTA worker processes (0 = serial; any count is bit-identical)"),
)


@dataclass
class Fig5Result:
    histogram: Dict[str, Dict[int, int]]   # point -> {#flips: count}
    multi_bit_fraction: Dict[str, float]
    average_multi_bit: float


def run(context=None, samples_per_op: int = 100_000,
        seed: int = 2021, workers: int = 0) -> Fig5Result:
    """The operand stream is always the historical ``fig5`` RNG stream;
    ``workers`` only fans the DTA reduction out, so the histogram is
    bit-identical for any worker count."""
    fpu = context.fpu if context is not None else FPU()
    pipeline = context.pipeline if context is not None else None
    if pipeline is None and workers:
        pipeline = CharacterizationPipeline(
            PipelineConfig(workers=workers, use_cache=False), fpu=fpu)
    rng = RngStream(seed, "fig5")
    points = [VR15, VR20]
    hists: Dict[str, np.ndarray] = {}
    for op in OPS_DOUBLE:
        a, b = random_operands(op, samples_per_op, rng.child(op.value))
        if pipeline is not None:
            op_hists = pipeline.flip_histograms(op, a, b, points)
        else:
            batch = fpu.dta(op, a, b, points)
            op_hists = {}
            for point in points:
                masks = batch.masks[point.name]
                faulty = masks[masks != 0]
                op_hists[point.name] = np.bincount(
                    count_ones(faulty) if faulty.size
                    else np.zeros(0, dtype=np.int64),
                    minlength=op.fmt.width + 1).astype(np.int64)
        for name, hist in op_hists.items():
            if name not in hists:
                hists[name] = np.zeros(hist.size, dtype=np.int64)
            if hists[name].size < hist.size:
                hists[name] = np.pad(hists[name],
                                     (0, hist.size - hists[name].size))
            hists[name][:hist.size] += hist
    histogram: Dict[str, Dict[int, int]] = {}
    multi: Dict[str, float] = {}
    for point in points:
        hist = hists.get(point.name, np.zeros(1, dtype=np.int64))
        histogram[point.name] = {int(n): int(c)
                                 for n, c in enumerate(hist)
                                 if n >= 1 and c}
        faulty_total = int(hist[1:].sum())
        multi[point.name] = (float(hist[2:].sum() / faulty_total)
                             if faulty_total else 0.0)
    average = sum(multi.values()) / len(multi)
    return Fig5Result(histogram=histogram, multi_bit_fraction=multi,
                      average_multi_bit=average)


def render(result: Fig5Result) -> str:
    lines = ["Fig. 5 — bit flips per faulty instruction output"]
    for point, hist in result.histogram.items():
        lines.append(f"  {point}: multi-bit fraction = "
                     f"{result.multi_bit_fraction[point]:.1%}")
        total = sum(hist.values())
        for n_flips in sorted(hist):
            share = hist[n_flips] / max(1, total)
            bar = "#" * max(1, int(round(30 * share)))
            lines.append(f"    {n_flips:3d} flips: {share:6.1%} {bar}")
    lines.append(f"  average multi-bit fraction: "
                 f"{result.average_multi_bit:.1%} (paper: 64.5%)")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
