"""Fig. 5: number of bit flips at faulty instruction outputs (VR15/VR20).

DTA over random operands for all double-precision instruction types;
histogram of popcount(bitmask) over the faulty instructions.  Expected
shape (paper): timing errors are multi-bit in the majority of cases
(64.5 % on average across the two VR levels), unlike single-bit soft
errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.circuit.liberty import VR15, VR20
from repro.errors.characterize import random_operands
from repro.experiments import Option
from repro.fpu.formats import OPS_DOUBLE
from repro.fpu.unit import FPU
from repro.utils.bitops import count_ones
from repro.utils.rng import RngStream

TITLE = "Fig. 5 — bit flips per faulty instruction output"

OPTIONS = (
    Option("samples_per_op", int, 100_000,
           "random operand pairs per instruction type"),
    Option("seed", int, 2021, "operand-generation seed"),
)


@dataclass
class Fig5Result:
    histogram: Dict[str, Dict[int, int]]   # point -> {#flips: count}
    multi_bit_fraction: Dict[str, float]
    average_multi_bit: float


def run(context=None, samples_per_op: int = 100_000,
        seed: int = 2021) -> Fig5Result:
    fpu = context.fpu if context is not None else FPU()
    rng = RngStream(seed, "fig5")
    points = [VR15, VR20]
    flips: Dict[str, List[np.ndarray]] = {p.name: [] for p in points}
    for op in OPS_DOUBLE:
        a, b = random_operands(op, samples_per_op, rng.child(op.value))
        batch = fpu.dta(op, a, b, points)
        for point in points:
            masks = batch.masks[point.name]
            faulty = masks[masks != 0]
            if faulty.size:
                flips[point.name].append(count_ones(faulty))
    histogram: Dict[str, Dict[int, int]] = {}
    multi: Dict[str, float] = {}
    for point in points:
        merged = (np.concatenate(flips[point.name])
                  if flips[point.name] else np.zeros(0, dtype=np.int64))
        values, counts = np.unique(merged, return_counts=True)
        histogram[point.name] = {int(v): int(c)
                                 for v, c in zip(values, counts)}
        multi[point.name] = (float(np.mean(merged > 1))
                             if merged.size else 0.0)
    average = sum(multi.values()) / len(multi)
    return Fig5Result(histogram=histogram, multi_bit_fraction=multi,
                      average_multi_bit=average)


def render(result: Fig5Result) -> str:
    lines = ["Fig. 5 — bit flips per faulty instruction output"]
    for point, hist in result.histogram.items():
        lines.append(f"  {point}: multi-bit fraction = "
                     f"{result.multi_bit_fraction[point]:.1%}")
        total = sum(hist.values())
        for n_flips in sorted(hist):
            share = hist[n_flips] / max(1, total)
            bar = "#" * max(1, int(round(30 * share)))
            lines.append(f"    {n_flips:3d} flips: {share:6.1%} {bar}")
    lines.append(f"  average multi-bit fraction: "
                 f"{result.average_multi_bit:.1%} (paper: 64.5%)")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
