"""Fig. 9: injection-outcome distributions per benchmark, model, VR level.

The paper's headline campaigns: 1068 statistically sized injection runs
per (benchmark, VR level, model) cell, outcomes classified as Masked /
SDC / Crash / Timeout.  Expected shape (paper): WA diverges strongly from
DA/IA; hotspot is error-free at VR15 under WA while DA calls it fully
corrupted; k-means is tolerant under IA/WA; cg keeps substantial masking
under WA only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.campaign.adaptive import AdaptiveConfig, AdaptiveReport
from repro.campaign.report import outcome_table
from repro.campaign.runner import CampaignResult
from repro.experiments import Option, comma_separated_names, flag_bool
from repro.experiments.context import (
    BENCHMARKS,
    ExperimentContext,
    ensure_context,
)
from repro.utils.stats import confidence_sample_size

TITLE = "Fig. 9 — injection-outcome distributions per benchmark/model/VR"

OPTIONS = (
    Option("runs", int, 1068, "injection runs per campaign cell"),
    Option("scale", str, "small", "workload scale (tiny/small/paper)"),
    Option("seed", int, 2021, "context/campaign seed"),
    Option("samples", int, 50_000, "characterisation samples per type"),
    Option("benchmarks", comma_separated_names, BENCHMARKS,
           "comma-separated benchmark subset"),
    Option("adaptive", flag_bool, False,
           "stop each cell at the CI target instead of fixed-N"),
    Option("ci_target", float, 0.03,
           "adaptive stop half-width (the paper's ±margin)"),
    Option("min_runs", int, 100, "adaptive floor: never stop below this"),
    Option("importance", flag_bool, False,
           "importance-sample WA victims (HT-reweighted AVM)"),
)


@dataclass
class Fig9Result:
    results: List[CampaignResult]
    runs_per_cell: int
    adaptive_report: Optional[AdaptiveReport] = None

    def cell(self, workload: str, model: str, point: str) -> CampaignResult:
        for result in self.results:
            if (result.workload, result.model, result.point) == (
                    workload, model, point):
                return result
        raise KeyError((workload, model, point))


def run(context: Optional[ExperimentContext] = None,
        runs: Optional[int] = None,
        scale: str = "small", seed: int = 2021,
        samples: int = 50_000, benchmarks=None,
        adaptive: bool = False, ci_target: float = 0.03,
        min_runs: int = 100, importance: bool = False) -> Fig9Result:
    context = ensure_context(context, scale=scale, seed=seed,
                             samples=samples, benchmarks=benchmarks)
    runs = runs if runs is not None else confidence_sample_size()
    config = None
    if adaptive or importance:
        config = AdaptiveConfig(ci_target=ci_target, min_runs=min_runs,
                                importance=importance)
    results = context.run_campaigns(runs, adaptive=config,
                                    importance=importance)
    return Fig9Result(results=results, runs_per_cell=runs,
                      adaptive_report=(context.adaptive_report
                                       if config is not None else None))


def render(result: Fig9Result) -> str:
    header = (f"Fig. 9 — outcome distributions "
              f"({result.runs_per_cell} runs per cell)")
    body = header + "\n" + outcome_table(result.results)
    if result.adaptive_report is not None:
        body += "\n\n" + result.adaptive_report.render()
    return body


if __name__ == "__main__":  # pragma: no cover
    print(render(run(runs=200)))
