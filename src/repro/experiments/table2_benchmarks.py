"""Table II: benchmark inputs, dynamic instruction counts, classification.

Reports, for the scale in use, each benchmark's input descriptor, its
total dynamic instruction count (FP stream plus the per-benchmark
non-FP expansion), and the Table II classification criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.campaign.report import format_table
from repro.experiments import Option, comma_separated_names
from repro.experiments.context import BENCHMARKS, ExperimentContext
from repro.workloads import make_workload

TITLE = "Table II — benchmark inputs, instruction counts, classification"

OPTIONS = (
    Option("scale", str, "small", "workload scale (tiny/small/paper)"),
    Option("seed", int, 2021, "workload seed"),
    Option("benchmarks", comma_separated_names, BENCHMARKS,
           "comma-separated benchmark subset"),
)


@dataclass
class Table2Row:
    name: str
    input_descriptor: str
    fp_instructions: int
    total_instructions: int
    classification: str


@dataclass
class Table2Result:
    rows: List[Table2Row]
    scale: str


def run(context: Optional[ExperimentContext] = None,
        scale: str = "small", seed: int = 2021,
        benchmarks=None) -> Table2Result:
    rows: List[Table2Row] = []
    if context is not None:
        scale = context.scale
        for name in context.benchmarks:
            workload = context.runners[name].workload
            profile = context.profiles[name]
            rows.append(Table2Row(
                name=name,
                input_descriptor=workload.input_descriptor,
                fp_instructions=profile.fp_instructions,
                total_instructions=profile.total_instructions,
                classification=workload.classification,
            ))
        return Table2Result(rows=rows, scale=scale)
    from repro.campaign.runner import CampaignRunner

    for name in (benchmarks if benchmarks else BENCHMARKS):
        workload = make_workload(name, scale=scale, seed=seed)
        profile = CampaignRunner(workload, seed=seed).golden().profile
        rows.append(Table2Row(
            name=name,
            input_descriptor=workload.input_descriptor,
            fp_instructions=profile.fp_instructions,
            total_instructions=profile.total_instructions,
            classification=workload.classification,
        ))
    return Table2Result(rows=rows, scale=scale)


def render(result: Table2Result) -> str:
    table = format_table(
        ["App", "Input", "FP instr", "Total instr", "Classification"],
        [[row.name, row.input_descriptor, f"{row.fp_instructions:,}",
          f"{row.total_instructions:,}", row.classification]
         for row in result.rows],
    )
    return (f"Table II — benchmarks at scale {result.scale!r} "
            f"(paper inputs are 1e8-1e10 instructions; see DESIGN.md)\n"
            + table)


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
