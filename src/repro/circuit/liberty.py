"""Voltage-dependent delay characterisation (SiliconSmart substitute).

The paper re-characterises the NanGate 45 nm library at reduced supply
voltages with Synopsys SiliconSmart and studies two voltage-reduction (VR)
levels: VR15 (15 %, 0.935 V) and VR20 (20 %, 0.88 V) below the 1.1 V
nominal.  We reproduce the *output* of that step — a per-voltage delay
multiplier applied uniformly to cell delays — with the alpha-power-law MOS
delay model (Sakurai-Newton):

    t_d(V) ∝ V / (V - Vth)^alpha

which is the standard analytic fit to exactly the gate-delay-vs-voltage
curves a characterisation tool produces for a given process corner.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OperatingPoint:
    """A supply-voltage operating point of the target core."""

    name: str
    voltage: float
    temperature_c: float = 25.0

    def reduction_from(self, nominal_voltage: float) -> float:
        """Fractional voltage reduction relative to ``nominal_voltage``."""
        return 1.0 - self.voltage / nominal_voltage


class VoltageScalingModel:
    """Alpha-power-law delay scaling for a 45 nm-like technology.

    ``delay_factor(v)`` returns the multiplier applied to every nominal
    cell/interconnect delay when operating at supply ``v``; it is 1.0 at
    the nominal voltage and grows super-linearly as ``v`` approaches the
    threshold voltage — the "timing wall" the paper's Section V.B refers
    to.  Defaults are calibrated for the reproduction so that VR15 and
    VR20 land at roughly +20 % and +31 % delay, putting random-operand
    error ratios in the 1e-3 / 1e-2 decades the paper measures.
    """

    def __init__(
        self,
        nominal_voltage: float = 1.1,
        threshold_voltage: float = 0.40,
        alpha: float = 1.3,
    ):
        if nominal_voltage <= threshold_voltage:
            raise ValueError("nominal voltage must exceed threshold voltage")
        self.nominal_voltage = nominal_voltage
        self.threshold_voltage = threshold_voltage
        self.alpha = alpha
        self._nominal_k = self._k(nominal_voltage)

    def _k(self, voltage: float) -> float:
        if voltage <= self.threshold_voltage:
            raise ValueError(
                f"supply {voltage} V at or below threshold "
                f"{self.threshold_voltage} V: circuit does not switch"
            )
        return voltage / (voltage - self.threshold_voltage) ** self.alpha

    def delay_factor(self, voltage: float) -> float:
        """Delay multiplier at ``voltage`` relative to nominal (>= 1 below nominal)."""
        return self._k(voltage) / self._nominal_k

    def delay_factor_for_reduction(self, reduction: float) -> float:
        """Delay multiplier for a fractional voltage reduction (e.g. 0.15)."""
        if not 0.0 <= reduction < 1.0:
            raise ValueError("reduction must be in [0, 1)")
        return self.delay_factor(self.nominal_voltage * (1.0 - reduction))

    def operating_point(self, reduction: float, name: str = "") -> OperatingPoint:
        """Operating point for a fractional reduction below nominal."""
        voltage = self.nominal_voltage * (1.0 - reduction)
        label = name or f"VR{int(round(reduction * 100)):02d}"
        # Validate the point is above threshold before handing it out.
        self._k(voltage)
        return OperatingPoint(name=label, voltage=voltage)

    def power_factor(self, voltage: float) -> float:
        """Dynamic power multiplier at ``voltage`` relative to nominal.

        Dynamic power scales with V^2 (at iso-frequency); this is the model
        behind the paper's Section V.C energy-saving numbers ("reduce the
        voltage from 1.1 V down to 0.88 V ... improve power efficiency by
        up to 56 %" -- note the paper also folds in frequency headroom; the
        pure V^2 term gives 36 %, and :mod:`repro.campaign.avm` documents
        the composition used).
        """
        return (voltage / self.nominal_voltage) ** 2


#: The technology model every experiment shares.
TECHNOLOGY = VoltageScalingModel()

#: Paper operating points (Section IV.B.1).
NOMINAL = OperatingPoint(name="NOM", voltage=TECHNOLOGY.nominal_voltage)
VR15 = TECHNOLOGY.operating_point(0.15, name="VR15")
VR20 = TECHNOLOGY.operating_point(0.20, name="VR20")

#: Mapping used by campaign configuration files.
OPERATING_POINTS = {"NOM": NOMINAL, "VR15": VR15, "VR20": VR20}


def delay_factor(point: OperatingPoint) -> float:
    """Convenience: delay multiplier of an operating point under TECHNOLOGY."""
    return TECHNOLOGY.delay_factor(point.voltage)
