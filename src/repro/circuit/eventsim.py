"""Event-driven gate-level logic-and-timing simulation (ModelSim substitute).

Transport-delay simulation of a :class:`~repro.circuit.netlist.Netlist`:
each input transition schedules re-evaluations through the gate graph, and
every net records when it last changed.  Sampling the primary outputs at
the clock edge then reveals *timing errors*: output bits whose final
settling happens after the edge are captured with their stale (pre-settle)
value, exactly the mechanism of Section II.A.

This is the reference simulator the vectorised FPU macro-timing model is
calibrated against; it is bit- and picosecond-exact but scales only to
netlists of a few tens of thousands of gates and a few thousand vectors.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.circuit.netlist import Gate, Netlist
from repro import telemetry


@dataclass
class SimulationResult:
    """Outcome of simulating one input transition.

    - ``final_values``: settled value of every net,
    - ``settle_times``: time of the last value change per net (0.0 if the
      net never toggled during this transition),
    - ``output_history``: per-primary-output list of (time, value) changes,
      starting with the initial value at t = -inf (encoded as time 0 entry
      ordering-first).
    """

    final_values: Dict[str, int]
    settle_times: Dict[str, float]
    output_history: Dict[str, List[Tuple[float, int]]]
    events_processed: int

    def sampled_outputs(self, clock_ps: float) -> Dict[str, int]:
        """Value a capture flop would latch at the clock edge per output."""
        sampled: Dict[str, int] = {}
        for net, history in self.output_history.items():
            value = history[0][1]
            for time, v in history[1:]:
                if time <= clock_ps:
                    value = v
                else:
                    break
            sampled[net] = value
        return sampled

    def timing_error_bits(self, clock_ps: float) -> Dict[str, bool]:
        """Per-output flag: sampled value differs from settled value."""
        sampled = self.sampled_outputs(clock_ps)
        return {
            net: sampled[net] != self.final_values[net]
            for net in self.output_history
        }


class EventSimulator:
    """Transport-delay event simulation with voltage-scaled gate delays."""

    def __init__(self, netlist: Netlist, delay_factor: float = 1.0):
        if delay_factor <= 0:
            raise ValueError("delay_factor must be positive")
        self.netlist = netlist
        self.delay_factor = delay_factor
        self._fanout = netlist.fanout()
        self._outputs = list(netlist.outputs)

    def simulate(
        self,
        initial_inputs: Dict[str, int],
        final_inputs: Dict[str, int],
        max_events: int = 5_000_000,
    ) -> SimulationResult:
        """Settle at ``initial_inputs``, then transition to ``final_inputs``.

        Mirrors the paper's two-cycle structure: the circuit holds the
        previous instruction's operands, then the new operands arrive at
        the active clock edge (t = 0) and race the next edge.
        """
        values = self.netlist.evaluate(initial_inputs)
        settle_times: Dict[str, float] = {net: 0.0 for net in values}
        history: Dict[str, List[Tuple[float, int]]] = {
            net: [(-1.0, values[net])] for net in self._outputs
        }

        heap: List[Tuple[float, int, str, int]] = []
        counter = 0
        for net in self.netlist.inputs:
            if net not in final_inputs:
                raise ValueError(f"missing final value for input net {net!r}")
            new_value = final_inputs[net] & 1
            if new_value != values[net]:
                heapq.heappush(heap, (0.0, counter, net, new_value))
                counter += 1

        events = 0
        while heap:
            time, _, net, value = heapq.heappop(heap)
            events += 1
            if events > max_events:
                raise RuntimeError(
                    f"event budget exceeded simulating {self.netlist.name}"
                )
            if values[net] == value:
                continue
            values[net] = value
            settle_times[net] = time
            if net in history:
                history[net].append((time, value))
            for gate in self._fanout.get(net, ()):
                operands = tuple(values[n] for n in gate.inputs)
                out_value = gate.cell.evaluate(operands)
                out_time = time + gate.delay_ps * self.delay_factor
                heapq.heappush(heap, (out_time, counter, gate.output, out_value))
                counter += 1

        telemetry.count("eventsim.simulations")
        telemetry.count("eventsim.events", events)
        return SimulationResult(
            final_values=values,
            settle_times=settle_times,
            output_history=history,
            events_processed=events,
        )

    def settle(self, inputs: Dict[str, int]) -> Dict[str, int]:
        """Zero-delay functional evaluation (golden reference)."""
        return self.netlist.evaluate_outputs(inputs)
