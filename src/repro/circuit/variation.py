"""Additional delay-increase sources (the paper's future-work section).

Section VI: "the proposed tool can be easily extended to assess timing
errors due to several sources of delay increase such as temperature
variations, overclocking, transistor aging, and process fluctuations."
This module supplies those sources as composable delay factors; because
the whole injection stack keys on a slack threshold th = 1 - 1/f, any
combination of factors drops straight into
:class:`repro.fpu.timing.TimingModel` through the stress-point helper.

Models (standard first-order forms):

- **Aging** (NBTI/HCI): threshold-voltage shift grows with a power law of
  stress time, dVth(t) = A * t^n (n ~ 0.2), which raises delay through
  the alpha-power law.
- **Temperature**: in the super-threshold regime mobility degradation
  dominates: delay grows roughly linearly with temperature.
- **Overclocking**: shrinking the cycle time is equivalent to inflating
  all delays by the same ratio.
- **Process fluctuation**: a die-specific multiplicative delay offset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuit.liberty import (
    OperatingPoint,
    TECHNOLOGY,
    VoltageScalingModel,
)


@dataclass(frozen=True)
class AgingModel:
    """BTI-style power-law threshold shift.

    ``delta_vth_10y`` is the threshold shift after 10 years of stress at
    nominal conditions; the time exponent defaults to the textbook 0.2.
    """

    delta_vth_10y: float = 0.045
    exponent: float = 0.20

    def delta_vth(self, years: float) -> float:
        if years < 0:
            raise ValueError("years must be non-negative")
        if years == 0:
            return 0.0
        return self.delta_vth_10y * (years / 10.0) ** self.exponent

    def delay_factor(self, years: float,
                     technology: VoltageScalingModel = TECHNOLOGY,
                     voltage: float = None) -> float:
        """Delay multiplier after ``years`` of aging at ``voltage``.

        Aged vs fresh drive strength at the same supply: the threshold
        shift enters the alpha-power law directly.
        """
        shift = self.delta_vth(years)
        if shift == 0.0:
            return 1.0
        v = voltage if voltage is not None else technology.nominal_voltage
        aged = VoltageScalingModel(
            nominal_voltage=technology.nominal_voltage,
            threshold_voltage=technology.threshold_voltage + shift,
            alpha=technology.alpha,
        )
        return aged._k(v) / technology._k(v)


@dataclass(frozen=True)
class TemperatureModel:
    """Linear mobility-degradation delay model around the 25 C corner."""

    reference_c: float = 25.0
    percent_per_10c: float = 0.8

    def delay_factor(self, temperature_c: float) -> float:
        delta = (temperature_c - self.reference_c) / 10.0
        factor = 1.0 + (self.percent_per_10c / 100.0) * delta
        if factor <= 0:
            raise ValueError("temperature model left its validity range")
        return factor


def overclock_factor(nominal_clock_ps: float, target_clock_ps: float) -> float:
    """Delay inflation equivalent to shrinking the cycle time."""
    if nominal_clock_ps <= 0 or target_clock_ps <= 0:
        raise ValueError("clock periods must be positive")
    return nominal_clock_ps / target_clock_ps


@dataclass(frozen=True)
class StressCondition:
    """A composite operating condition: voltage + aging + heat + clocking."""

    voltage_reduction: float = 0.0
    years: float = 0.0
    temperature_c: float = 25.0
    overclock: float = 1.0
    process_factor: float = 1.0
    aging: AgingModel = AgingModel()
    temperature: TemperatureModel = TemperatureModel()

    def delay_factor(self,
                     technology: VoltageScalingModel = TECHNOLOGY) -> float:
        """Combined delay multiplier relative to fresh nominal silicon."""
        voltage = technology.nominal_voltage * (1.0 - self.voltage_reduction)
        factor = technology.delay_factor(voltage)
        factor *= self._aging_factor(technology, voltage)
        factor *= self.temperature.delay_factor(self.temperature_c)
        factor *= self.overclock
        factor *= self.process_factor
        return factor

    def _aging_factor(self, technology: VoltageScalingModel,
                      voltage: float) -> float:
        shift = self.aging.delta_vth(self.years)
        if shift == 0.0:
            return 1.0
        aged = VoltageScalingModel(
            nominal_voltage=technology.nominal_voltage,
            threshold_voltage=technology.threshold_voltage + shift,
            alpha=technology.alpha,
        )
        return aged._k(voltage) / technology._k(voltage)

    def operating_point(self, name: str = "",
                        technology: VoltageScalingModel = TECHNOLOGY,
                        ) -> "StressPoint":
        label = name or (
            f"VR{int(round(self.voltage_reduction * 100)):02d}"
            f"Y{self.years:g}T{self.temperature_c:g}"
        )
        return StressPoint(
            name=label,
            voltage=technology.nominal_voltage * (1 - self.voltage_reduction),
            temperature_c=self.temperature_c,
            factor=self.delay_factor(technology),
        )


@dataclass(frozen=True)
class StressPoint(OperatingPoint):
    """An operating point whose delay factor is pre-composed.

    :class:`repro.fpu.timing.TimingModel` maps points to delay factors
    through the technology's voltage curve; stress points instead carry
    their combined factor directly, which
    :func:`stress_threshold` converts to a slack threshold.
    """

    factor: float = 1.0


def stress_threshold(point: StressPoint) -> float:
    """Slack threshold th = 1 - 1/f for a composed stress point."""
    if point.factor <= 0:
        raise ValueError("delay factor must be positive")
    return max(0.0, 1.0 - 1.0 / point.factor)
