"""Standard-cell library model.

Stands in for the NanGate FreePDK45 Composite Current Source library the
paper implements the FPU with.  Each :class:`Cell` carries a boolean
function and a nominal propagation delay in picoseconds (typical corner:
1.1 V, 25 C).  Delay under reduced supply voltage is obtained by scaling
with :class:`repro.circuit.liberty.VoltageScalingModel`, mirroring the
SiliconSmart re-characterisation step of Section IV.B.1.

Delays are representative of a 45 nm process (inverter FO4 around 15 ps)
and, crucially for the reproduction, keep the *relative* ordering of cell
delays (XOR > NAND > INV, full adder carry < sum) that shapes real
datapath critical paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

LogicFn = Callable[[Tuple[int, ...]], int]


@dataclass(frozen=True)
class Cell:
    """One standard cell: name, arity, boolean function, nominal delay.

    ``delay_ps`` is the pin-to-pin propagation delay at the typical corner
    for a fanout-of-4 load; interconnect load is added separately by the
    SDF annotation step.  ``sequential`` marks flip-flops, which terminate
    timing paths instead of propagating through them.
    """

    name: str
    inputs: int
    function: LogicFn
    delay_ps: float
    sequential: bool = False
    description: str = ""

    def evaluate(self, values: Tuple[int, ...]) -> int:
        if len(values) != self.inputs:
            raise ValueError(
                f"cell {self.name} expects {self.inputs} inputs, got {len(values)}"
            )
        return self.function(values) & 1


def _inv(v):
    return 1 - v[0]


def _buf(v):
    return v[0]


def _nand2(v):
    return 1 - (v[0] & v[1])


def _nor2(v):
    return 1 - (v[0] | v[1])


def _and2(v):
    return v[0] & v[1]


def _or2(v):
    return v[0] | v[1]


def _xor2(v):
    return v[0] ^ v[1]


def _xnor2(v):
    return 1 - (v[0] ^ v[1])


def _and3(v):
    return v[0] & v[1] & v[2]


def _or3(v):
    return v[0] | v[1] | v[2]


def _nand3(v):
    return 1 - (v[0] & v[1] & v[2])


def _nor3(v):
    return 1 - (v[0] | v[1] | v[2])


def _xor3(v):
    return v[0] ^ v[1] ^ v[2]


def _mux2(v):
    # inputs: (d0, d1, select)
    return v[1] if v[2] else v[0]


def _aoi21(v):
    # inputs: (a1, a2, b) -> !((a1 & a2) | b)
    return 1 - ((v[0] & v[1]) | v[2])


def _oai21(v):
    # inputs: (a1, a2, b) -> !((a1 | a2) & b)
    return 1 - ((v[0] | v[1]) & v[2])


def _maj3(v):
    # full-adder carry: majority of three
    return (v[0] & v[1]) | (v[1] & v[2]) | (v[0] & v[2])


def _dff(v):
    return v[0]


def _tie0(v):
    return 0


def _tie1(v):
    return 1


class CellLibrary:
    """A named collection of cells with lookup and registration."""

    def __init__(self, name: str):
        self.name = name
        self._cells: Dict[str, Cell] = {}

    def add(self, cell: Cell) -> Cell:
        if cell.name in self._cells:
            raise ValueError(f"duplicate cell {cell.name} in library {self.name}")
        self._cells[cell.name] = cell
        return cell

    def __getitem__(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"unknown cell {name!r} in library {self.name}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def names(self):
        return sorted(self._cells)


def default_library() -> CellLibrary:
    """The 45 nm-like library used by every netlist in the reproduction."""
    lib = CellLibrary("repro45")
    for cell in (
        Cell("INV", 1, _inv, 15.0, description="inverter"),
        Cell("BUF", 1, _buf, 22.0, description="buffer"),
        Cell("NAND2", 2, _nand2, 20.0, description="2-input NAND"),
        Cell("NOR2", 2, _nor2, 24.0, description="2-input NOR"),
        Cell("AND2", 2, _and2, 28.0, description="2-input AND"),
        Cell("OR2", 2, _or2, 30.0, description="2-input OR"),
        Cell("XOR2", 2, _xor2, 42.0, description="2-input XOR"),
        Cell("XNOR2", 2, _xnor2, 44.0, description="2-input XNOR"),
        Cell("NAND3", 3, _nand3, 26.0, description="3-input NAND"),
        Cell("NOR3", 3, _nor3, 32.0, description="3-input NOR"),
        Cell("AND3", 3, _and3, 34.0, description="3-input AND"),
        Cell("OR3", 3, _or3, 36.0, description="3-input OR"),
        Cell("XOR3", 3, _xor3, 66.0, description="3-input XOR (FA sum)"),
        Cell("MUX2", 3, _mux2, 38.0, description="2:1 multiplexer (d0,d1,sel)"),
        Cell("AOI21", 3, _aoi21, 26.0, description="and-or-invert 2-1"),
        Cell("OAI21", 3, _oai21, 26.0, description="or-and-invert 2-1"),
        Cell("MAJ3", 3, _maj3, 48.0, description="majority (FA carry)"),
        Cell("DFF", 1, _dff, 35.0, sequential=True,
             description="D flip-flop (delay = clk-to-q + setup budget)"),
        Cell("TIE0", 0, _tie0, 0.0, description="constant logic-0"),
        Cell("TIE1", 0, _tie1, 0.0, description="constant logic-1"),
    ):
        lib.add(cell)
    return lib


#: Library singleton shared by the builders; treat as read-only.
LIBRARY = default_library()
