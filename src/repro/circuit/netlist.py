"""Gate-level netlist container.

The equivalent of the post-synthesis Verilog netlist (.v) the paper feeds
to ModelSim: a directed graph of cell instances connected by named nets,
with declared primary inputs and outputs.  Provides validation (arity,
drivers, combinational-loop detection) and the topological order that both
static timing analysis and event-driven simulation build on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.circuit.cells import Cell, CellLibrary, LIBRARY


@dataclass
class Gate:
    """One cell instance: which cell, its input nets, its output net.

    ``wire_delay_ps`` is the interconnect delay added by the SDF annotation
    step (zero for a freshly built netlist); the effective propagation
    delay of the instance is ``cell.delay_ps + wire_delay_ps``, both scaled
    by the operating point's voltage factor at analysis time.
    """

    name: str
    cell: Cell
    inputs: List[str]
    output: str
    wire_delay_ps: float = 0.0

    @property
    def delay_ps(self) -> float:
        return self.cell.delay_ps + self.wire_delay_ps


class Netlist:
    """A flat combinational netlist with named primary inputs/outputs.

    Sequential cells (DFFs) are allowed only as output-boundary markers;
    the datapath generators in :mod:`repro.circuit.builder` emit purely
    combinational stage netlists, matching the per-pipeline-stage path
    model of Section II.A.
    """

    def __init__(self, name: str, library: CellLibrary = LIBRARY):
        self.name = name
        self.library = library
        self.gates: List[Gate] = []
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self._driver: Dict[str, Gate] = {}
        self._topo_cache: Optional[List[Gate]] = None

    # -- construction ---------------------------------------------------------
    def add_input(self, net: str) -> str:
        if net in self._driver or net in self.inputs:
            raise ValueError(f"net {net!r} already driven")
        self.inputs.append(net)
        return net

    def add_inputs(self, nets: Iterable[str]) -> List[str]:
        return [self.add_input(n) for n in nets]

    def add_gate(self, cell_name: str, inputs: Sequence[str], output: str,
                 name: str = "") -> Gate:
        cell = self.library[cell_name]
        if len(inputs) != cell.inputs:
            raise ValueError(
                f"{cell_name} takes {cell.inputs} inputs, got {len(inputs)}"
            )
        if output in self._driver or output in self.inputs:
            raise ValueError(f"net {output!r} already driven")
        gate = Gate(name=name or f"g{len(self.gates)}", cell=cell,
                    inputs=list(inputs), output=output)
        self.gates.append(gate)
        self._driver[output] = gate
        self._topo_cache = None
        return gate

    def mark_output(self, net: str) -> str:
        if net not in self._driver and net not in self.inputs:
            raise ValueError(f"cannot mark undriven net {net!r} as output")
        if net not in self.outputs:
            self.outputs.append(net)
        return net

    def mark_outputs(self, nets: Iterable[str]) -> List[str]:
        return [self.mark_output(n) for n in nets]

    # -- queries ---------------------------------------------------------------
    def driver_of(self, net: str) -> Optional[Gate]:
        return self._driver.get(net)

    @property
    def nets(self) -> List[str]:
        seen = dict.fromkeys(self.inputs)
        for gate in self.gates:
            seen.setdefault(gate.output, None)
        return list(seen)

    def fanout(self) -> Dict[str, List[Gate]]:
        """Map net -> list of gate instances reading it."""
        out: Dict[str, List[Gate]] = {net: [] for net in self.nets}
        for gate in self.gates:
            for net in gate.inputs:
                if net not in out:
                    raise ValueError(
                        f"gate {gate.name} reads undeclared net {net!r}"
                    )
                out[net].append(gate)
        return out

    def validate(self) -> None:
        """Check all reads are driven and the graph is loop-free."""
        driven = set(self.inputs) | set(self._driver)
        for gate in self.gates:
            for net in gate.inputs:
                if net not in driven:
                    raise ValueError(
                        f"gate {gate.name} input net {net!r} has no driver"
                    )
        for net in self.outputs:
            if net not in driven:
                raise ValueError(f"output net {net!r} has no driver")
        self.topological_order()  # raises on combinational loops

    def topological_order(self) -> List[Gate]:
        """Gates in dataflow order (Kahn's algorithm); cached."""
        if self._topo_cache is not None:
            return self._topo_cache
        indegree: Dict[str, int] = {}
        for gate in self.gates:
            indegree[gate.name] = sum(1 for n in gate.inputs if n in self._driver)
        by_input = self.fanout()
        ready = deque(g for g in self.gates if indegree[g.name] == 0)
        order: List[Gate] = []
        while ready:
            gate = ready.popleft()
            order.append(gate)
            for consumer in by_input.get(gate.output, ()):
                indegree[consumer.name] -= 1
                if indegree[consumer.name] == 0:
                    ready.append(consumer)
        if len(order) != len(self.gates):
            raise ValueError(f"combinational loop detected in netlist {self.name}")
        self._topo_cache = order
        return order

    def evaluate(self, input_values: Dict[str, int]) -> Dict[str, int]:
        """Zero-delay functional evaluation; returns values for all nets."""
        values: Dict[str, int] = {}
        for net in self.inputs:
            if net not in input_values:
                raise ValueError(f"missing value for input net {net!r}")
            values[net] = input_values[net] & 1
        for gate in self.topological_order():
            operands = tuple(values[n] for n in gate.inputs)
            values[gate.output] = gate.cell.evaluate(operands)
        return values

    def evaluate_outputs(self, input_values: Dict[str, int]) -> Dict[str, int]:
        """Zero-delay evaluation restricted to primary outputs."""
        values = self.evaluate(input_values)
        return {net: values[net] for net in self.outputs}

    def stats(self) -> Dict[str, int]:
        """Cell-count summary, like a synthesis report."""
        counts: Dict[str, int] = {}
        for gate in self.gates:
            counts[gate.cell.name] = counts.get(gate.cell.name, 0) + 1
        counts["_total"] = len(self.gates)
        counts["_inputs"] = len(self.inputs)
        counts["_outputs"] = len(self.outputs)
        return counts

    def __len__(self) -> int:
        return len(self.gates)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Netlist({self.name!r}, gates={len(self.gates)}, "
                f"inputs={len(self.inputs)}, outputs={len(self.outputs)})")
