"""Dynamic timing analysis (Section III.A.1).

Runs the two-parallel-instance experiment of the paper on a netlist: one
event-driven simulation at nominal delays and one at voltage-scaled
(longer) delays.  The nominal instance's settled output is the golden
value; the scaled instance is sampled at the clock edge and XOR-compared
bit-by-bit against the golden output, yielding the per-instruction error
*bitmask* that drives injection.

:class:`DynamicTimingAnalysis` is the ``event`` timing backend: the
bit-exact reference implementation of the batch-first
:class:`~repro.circuit.backend.TimingBackend` protocol.  It analyses one
lane at a time internally; the levelized bit-parallel engine in
:mod:`repro.circuit.bitsim` produces identical verdicts at a fraction of
the cost and should be preferred on hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.circuit.backend import (
    BatchOutcome,
    BatchTimingMixin,
    unpack_input_words,
)
from repro.circuit.eventsim import EventSimulator
from repro.circuit.netlist import Netlist
from repro import telemetry


@dataclass(frozen=True)
class DtaOutcome:
    """Result of DTA for one input transition (one 'instruction').

    ``bitmask`` has bit i set iff primary output i (in netlist output
    order) was captured with a wrong value at the clock edge — the XOR of
    golden and sampled outputs described in Section III.A.1.
    """

    golden: int
    sampled: int
    bitmask: int
    worst_settle_ps: float

    @property
    def faulty(self) -> bool:
        return self.bitmask != 0

    @property
    def flipped_bits(self) -> int:
        return bin(self.bitmask).count("1")


class DynamicTimingAnalysis(BatchTimingMixin):
    """Two-instance DTA over a netlist at a fixed clock and delay factor.

    This is the ``event`` backend: each lane of a batch runs through the
    event-driven simulator independently, making it the ground truth the
    bit-parallel backend is differentially tested against.
    """

    name = "event"

    def __init__(self, netlist: Netlist, clock_ps: float,
                 delay_factor: float):
        if clock_ps <= 0:
            raise ValueError("clock_ps must be positive")
        if delay_factor < 1.0:
            raise ValueError(
                "delay_factor below 1.0 means faster-than-nominal silicon; "
                "DTA models delay increase"
            )
        self.netlist = netlist
        self.clock_ps = clock_ps
        self.delay_factor = delay_factor
        self._nominal = EventSimulator(netlist, delay_factor=1.0)
        self._scaled = EventSimulator(netlist, delay_factor=delay_factor)
        self._outputs = list(netlist.outputs)

    def _pack(self, values: Dict[str, int]) -> int:
        word = 0
        for i, net in enumerate(self._outputs):
            if values[net]:
                word |= 1 << i
        return word

    def _analyze_pair(self, previous: Dict[str, int],
                      current: Dict[str, int]) -> DtaOutcome:
        """One lane through the two-instance event simulation."""
        golden_values = self._nominal.settle(current)
        golden = self._pack(golden_values)

        result = self._scaled.simulate(previous, current)
        sampled = self._pack(result.sampled_outputs(self.clock_ps))
        worst = max(
            (result.settle_times[n] for n in self._outputs), default=0.0
        )
        telemetry.count("dta.transitions")
        telemetry.observe("dta.settle_ps", worst)
        return DtaOutcome(
            golden=golden,
            sampled=sampled,
            bitmask=golden ^ sampled,
            worst_settle_ps=worst,
        )

    def analyze_batch(self, prev_words: Sequence[int],
                      cur_words: Sequence[int], *,
                      count: int) -> BatchOutcome:
        """DTA verdicts for ``count`` lanes of back-to-back transitions.

        Reference semantics: lanes are simulated one at a time through
        the event engine, so a batch is exactly equivalent to ``count``
        legacy ``analyze_transition`` calls.
        """
        previous = unpack_input_words(self.netlist, prev_words, count)
        current = unpack_input_words(self.netlist, cur_words, count)
        lanes = [self._analyze_pair(p, c) for p, c in zip(previous, current)]
        return BatchOutcome(
            outputs=tuple(self._outputs),
            golden=tuple(o.golden for o in lanes),
            sampled=tuple(o.sampled for o in lanes),
            bitmask=tuple(o.bitmask for o in lanes),
            worst_settle_ps=tuple(o.worst_settle_ps for o in lanes),
        )

    def verify_nominal(self, previous: Dict[str, int],
                       current: Dict[str, int]) -> bool:
        """Check the nominal instance meets timing (sanity gate for CLK)."""
        result = self._nominal.simulate(previous, current)
        sampled = self._pack(result.sampled_outputs(self.clock_ps))
        return sampled == self._pack(self._nominal.settle(current))
