"""Dynamic timing analysis (Section III.A.1).

Runs the two-parallel-instance experiment of the paper on a netlist: one
event-driven simulation at nominal delays and one at voltage-scaled
(longer) delays.  The nominal instance's settled output is the golden
value; the scaled instance is sampled at the clock edge and XOR-compared
bit-by-bit against the golden output, yielding the per-instruction error
*bitmask* that drives injection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.circuit.eventsim import EventSimulator
from repro.circuit.netlist import Netlist
from repro import telemetry


@dataclass(frozen=True)
class DtaOutcome:
    """Result of DTA for one input transition (one 'instruction').

    ``bitmask`` has bit i set iff primary output i (in netlist output
    order) was captured with a wrong value at the clock edge — the XOR of
    golden and sampled outputs described in Section III.A.1.
    """

    golden: int
    sampled: int
    bitmask: int
    worst_settle_ps: float

    @property
    def faulty(self) -> bool:
        return self.bitmask != 0

    @property
    def flipped_bits(self) -> int:
        return bin(self.bitmask).count("1")


class DynamicTimingAnalysis:
    """Two-instance DTA over a netlist at a fixed clock and delay factor."""

    def __init__(self, netlist: Netlist, clock_ps: float,
                 delay_factor: float):
        if clock_ps <= 0:
            raise ValueError("clock_ps must be positive")
        if delay_factor < 1.0:
            raise ValueError(
                "delay_factor below 1.0 means faster-than-nominal silicon; "
                "DTA models delay increase"
            )
        self.netlist = netlist
        self.clock_ps = clock_ps
        self.delay_factor = delay_factor
        self._nominal = EventSimulator(netlist, delay_factor=1.0)
        self._scaled = EventSimulator(netlist, delay_factor=delay_factor)
        self._outputs = list(netlist.outputs)

    def _pack(self, values: Dict[str, int]) -> int:
        word = 0
        for i, net in enumerate(self._outputs):
            if values[net]:
                word |= 1 << i
        return word

    def analyze_transition(self, previous: Dict[str, int],
                           current: Dict[str, int]) -> DtaOutcome:
        """DTA for a single back-to-back input pair."""
        golden_values = self._nominal.settle(current)
        golden = self._pack(golden_values)

        result = self._scaled.simulate(previous, current)
        sampled = self._pack(result.sampled_outputs(self.clock_ps))
        worst = max(
            (result.settle_times[n] for n in self._outputs), default=0.0
        )
        telemetry.count("dta.transitions")
        telemetry.observe("dta.settle_ps", worst)
        return DtaOutcome(
            golden=golden,
            sampled=sampled,
            bitmask=golden ^ sampled,
            worst_settle_ps=worst,
        )

    def analyze_sequence(
        self, vectors: Sequence[Dict[str, int]]
    ) -> List[DtaOutcome]:
        """DTA over a stream of input vectors applied back-to-back.

        The first vector only initialises the circuit state (no outcome is
        emitted for it), matching the paper's per-cycle model where each
        instruction's timing depends on the previous circuit state.
        """
        outcomes: List[DtaOutcome] = []
        with telemetry.span("dta.sequence", netlist=self.netlist.name,
                            vectors=len(vectors)):
            for previous, current in zip(vectors, vectors[1:]):
                outcomes.append(self.analyze_transition(previous, current))
        return outcomes

    def error_ratio(self, vectors: Sequence[Dict[str, int]]) -> float:
        """Eq. 2 over a vector stream: faulty / total transitions."""
        outcomes = self.analyze_sequence(vectors)
        if not outcomes:
            raise ValueError("need at least two vectors for a transition")
        return sum(1 for o in outcomes if o.faulty) / len(outcomes)

    def verify_nominal(self, previous: Dict[str, int],
                       current: Dict[str, int]) -> bool:
        """Check the nominal instance meets timing (sanity gate for CLK)."""
        result = self._nominal.simulate(previous, current)
        sampled = self._pack(result.sampled_outputs(self.clock_ps))
        return sampled == self._pack(self._nominal.settle(current))
