"""Static timing analysis.

Implements Eq. 1 of the paper: the clock period is the maximum path delay
over all paths in all pipeline stages.  Besides arrival times and the
critical path, this module enumerates the K longest paths of a netlist —
the analysis behind Fig. 4 (distribution of the 1000 longest paths across
the marocchino pipeline).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Gate, Netlist


@dataclass(frozen=True)
class TimingPath:
    """One structural timing path: ordered nets from an input to an output."""

    delay_ps: float
    nets: Tuple[str, ...]
    endpoint: str
    stage: str = ""

    def slack(self, clock_ps: float) -> float:
        return clock_ps - self.delay_ps

    def __len__(self) -> int:
        return len(self.nets)


class StaticTimingAnalysis:
    """Arrival-time propagation and K-longest-path enumeration.

    ``delay_factor`` scales every gate delay uniformly, which is how a
    reduced-voltage library characterisation enters timing analysis.
    """

    def __init__(self, netlist: Netlist, delay_factor: float = 1.0):
        if delay_factor <= 0:
            raise ValueError("delay_factor must be positive")
        self.netlist = netlist
        self.delay_factor = delay_factor
        self._arrival: Optional[Dict[str, float]] = None

    # -- arrival times -------------------------------------------------------------
    def arrival_times(self) -> Dict[str, float]:
        """Latest arrival time at every net (inputs arrive at t = 0)."""
        if self._arrival is not None:
            return self._arrival
        arrival: Dict[str, float] = {net: 0.0 for net in self.netlist.inputs}
        for gate in self.netlist.topological_order():
            in_arrival = max((arrival[n] for n in gate.inputs), default=0.0)
            arrival[gate.output] = in_arrival + gate.delay_ps * self.delay_factor
        self._arrival = arrival
        return arrival

    def critical_delay(self) -> float:
        """Delay of the longest input-to-output path (the stage's Eq. 1 term)."""
        arrival = self.arrival_times()
        if not self.netlist.outputs:
            raise ValueError(f"netlist {self.netlist.name} has no outputs")
        return max(arrival[net] for net in self.netlist.outputs)

    def output_arrivals(self) -> Dict[str, float]:
        """Arrival time of each primary output."""
        arrival = self.arrival_times()
        return {net: arrival[net] for net in self.netlist.outputs}

    def slack_per_output(self, clock_ps: float) -> Dict[str, float]:
        """Setup slack of each primary output against ``clock_ps``."""
        return {net: clock_ps - t for net, t in self.output_arrivals().items()}

    # -- path enumeration -----------------------------------------------------------
    def critical_path(self) -> TimingPath:
        """The single longest path, via backward trace of worst arrivals."""
        arrival = self.arrival_times()
        endpoint = max(self.netlist.outputs, key=lambda n: arrival[n])
        nets: List[str] = [endpoint]
        net = endpoint
        while True:
            gate = self.netlist.driver_of(net)
            if gate is None or not gate.inputs:
                break
            net = max(gate.inputs, key=lambda n: arrival[n])
            nets.append(net)
        nets.reverse()
        return TimingPath(delay_ps=arrival[endpoint], nets=tuple(nets),
                          endpoint=endpoint, stage=self.netlist.name)

    def longest_paths(self, k: int) -> List[TimingPath]:
        """The K longest structural paths, best-first.

        Works backwards from endpoints with a max-heap of partial paths
        ranked by (delay so far) + (remaining potential = arrival time of
        the frontier net), which is admissible, so paths pop in strictly
        non-increasing delay order and enumeration can stop at exactly K.
        """
        if k <= 0:
            return []
        arrival = self.arrival_times()
        heap: List[Tuple[float, int, float, Tuple[str, ...]]] = []
        counter = 0
        for endpoint in self.netlist.outputs:
            heapq.heappush(
                heap, (-arrival[endpoint], counter, 0.0, (endpoint,))
            )
            counter += 1
        results: List[TimingPath] = []
        while heap and len(results) < k:
            neg_bound, _, suffix_delay, nets = heapq.heappop(heap)
            frontier = nets[0]
            gate = self.netlist.driver_of(frontier)
            if gate is None or not gate.inputs:
                # Reached a primary input (or tie cell): complete path.
                total = suffix_delay
                tie = gate is not None and not gate.inputs
                results.append(
                    TimingPath(delay_ps=total + (gate.delay_ps * self.delay_factor if tie else 0.0),
                               nets=nets, endpoint=nets[-1],
                               stage=self.netlist.name)
                )
                continue
            edge = gate.delay_ps * self.delay_factor
            for source in gate.inputs:
                new_suffix = suffix_delay + edge
                bound = new_suffix + arrival[source]
                heapq.heappush(heap, (-bound, counter, new_suffix,
                                      (source,) + nets))
                counter += 1
        return results


def clock_period(stages: Sequence[Netlist], delay_factor: float = 1.0,
                 margin: float = 0.0) -> float:
    """Eq. 1: CLK = max over stages of the stage's critical delay.

    ``margin`` adds a guardband fraction (e.g. 0.1 for 10 %), the
    conventional pessimistic margin the paper's intro says designers add.
    """
    worst = max(StaticTimingAnalysis(stage, delay_factor).critical_delay()
                for stage in stages)
    return worst * (1.0 + margin)


def path_distribution(stages: Sequence[Netlist], k: int,
                      delay_factor: float = 1.0) -> List[TimingPath]:
    """The K longest paths across a set of stage netlists, merged (Fig. 4).

    Each path is tagged with its stage name; the merged list is sorted by
    delay descending and truncated to K.
    """
    merged: List[TimingPath] = []
    for stage in stages:
        sta = StaticTimingAnalysis(stage, delay_factor)
        merged.extend(sta.longest_paths(k))
    merged.sort(key=lambda p: p.delay_ps, reverse=True)
    return merged[:k]
