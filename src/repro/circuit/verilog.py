"""Structural-Verilog netlist export/import.

The paper's toolflow hands a post-synthesis gate-level netlist (.v) from
Design Compiler to ModelSim; this module round-trips our
:class:`~repro.circuit.netlist.Netlist` through the same structural
subset so netlists can be inspected with standard EDA tooling, diffed,
or re-imported.  Only the flat gate-instance subset is supported — the
exact shape synthesis emits:

    module adder8 (input a_0, ..., output s_7);
      wire n_12;
      NAND2 g17 (.A(a_0), .B(b_0), .Y(n_12));
      ...
    endmodule

Wire delays (the SDF annotation) are preserved in a sidecar comment per
instance, so export -> import is lossless for timing too.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.circuit.cells import CellLibrary, LIBRARY
from repro.circuit.netlist import Netlist

#: Input pin names by arity, matching common standard-cell conventions.
_PIN_NAMES = ["A", "B", "C"]
_OUT_PIN = "Y"


def _sanitize(net: str) -> str:
    """Map internal net names to Verilog identifiers (reversibly)."""
    return (net.replace("[", "__LB__").replace("]", "__RB__")
            .replace(".", "__DOT__"))


def _unsanitize(token: str) -> str:
    return (token.replace("__LB__", "[").replace("__RB__", "]")
            .replace("__DOT__", "."))


def export_verilog(netlist: Netlist) -> str:
    """Render a netlist as flat structural Verilog."""
    netlist.validate()
    inputs = [_sanitize(n) for n in netlist.inputs]
    outputs = [_sanitize(n) for n in netlist.outputs]
    ports = ([f"input {n}" for n in inputs]
             + [f"output {n}" for n in outputs])
    lines = [f"// netlist {netlist.name}: {len(netlist.gates)} cells",
             f"module {netlist.name} (",
             "  " + ",\n  ".join(ports),
             ");"]
    declared = set(netlist.inputs)
    for gate in netlist.gates:
        if gate.output not in declared and gate.output not in netlist.outputs:
            lines.append(f"  wire {_sanitize(gate.output)};")
            declared.add(gate.output)
    for gate in netlist.gates:
        pins = [f".{_PIN_NAMES[i]}({_sanitize(net)})"
                for i, net in enumerate(gate.inputs)]
        pins.append(f".{_OUT_PIN}({_sanitize(gate.output)})")
        lines.append(
            f"  {gate.cell.name} {gate.name} ({', '.join(pins)});"
            f"  // wire_delay_ps={gate.wire_delay_ps!r}"
        )
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_MODULE_RE = re.compile(r"module\s+(\w+)\s*\((.*?)\);", re.S)
_INSTANCE_RE = re.compile(
    r"^\s*(\w+)\s+(\w+)\s*\((.*?)\);\s*"
    r"(?://\s*wire_delay_ps=([0-9.eE+-]+))?\s*$"
)
_PIN_RE = re.compile(r"\.(\w+)\(([^)]*)\)")


def import_verilog(text: str, library: CellLibrary = LIBRARY) -> Netlist:
    """Parse the structural subset emitted by :func:`export_verilog`."""
    header = _MODULE_RE.search(text)
    if not header:
        raise ValueError("no module declaration found")
    name, port_block = header.groups()
    netlist = Netlist(name, library=library)

    outputs: List[str] = []
    for port in port_block.split(","):
        port = port.strip()
        if not port:
            continue
        direction, _, ident = port.partition(" ")
        net = _unsanitize(ident.strip())
        if direction == "input":
            netlist.add_input(net)
        elif direction == "output":
            outputs.append(net)
        else:
            raise ValueError(f"unsupported port declaration {port!r}")

    body = text[header.end():]
    for line in body.splitlines():
        stripped = line.strip()
        if (not stripped or stripped.startswith("//")
                or stripped.startswith("wire ")
                or stripped == "endmodule"):
            continue
        match = _INSTANCE_RE.match(line)
        if not match:
            raise ValueError(f"unparseable instance line: {stripped!r}")
        cell_name, instance, pin_block, delay = match.groups()
        if cell_name not in library:
            raise ValueError(f"unknown cell {cell_name!r}")
        pins: Dict[str, str] = {
            pin: _unsanitize(net)
            for pin, net in _PIN_RE.findall(pin_block)
        }
        output = pins.pop(_OUT_PIN)
        arity = library[cell_name].inputs
        ordered = [pins[_PIN_NAMES[i]] for i in range(arity)]
        gate = netlist.add_gate(cell_name, ordered, output, name=instance)
        if delay is not None:
            gate.wire_delay_ps = float(delay)

    netlist.mark_outputs(outputs)
    netlist.validate()
    return netlist
