"""Gate-level circuit substrate: the Python stand-in for the paper's EDA flow.

The paper's model-development phase runs on Synopsys Design Compiler,
Cadence Innovus, SiliconSmart and ModelSim; this package provides the
behaviour-relevant equivalents:

- :mod:`repro.circuit.cells` — standard-cell library (NanGate-45-like),
- :mod:`repro.circuit.liberty` — voltage-dependent delay characterisation,
- :mod:`repro.circuit.netlist` — gate-level netlist container,
- :mod:`repro.circuit.builder` — datapath structure generators (synthesis),
- :mod:`repro.circuit.sdf` — interconnect delay annotation (place & route),
- :mod:`repro.circuit.sta` — static timing analysis (Eq. 1 of the paper),
- :mod:`repro.circuit.eventsim` — event-driven gate-level timing simulation,
- :mod:`repro.circuit.dta` — dynamic timing analysis (Section III.A.1),
- :mod:`repro.circuit.backend` — batch-first :class:`TimingBackend` protocol,
- :mod:`repro.circuit.bitsim` — levelized bit-parallel batch DTA engine.
"""

from repro.circuit.cells import Cell, CellLibrary, default_library
from repro.circuit.liberty import OperatingPoint, VoltageScalingModel, VR15, VR20, NOMINAL
from repro.circuit.netlist import Gate, Netlist
from repro.circuit.builder import NetlistBuilder
from repro.circuit.sdf import annotate_interconnect
from repro.circuit.sta import StaticTimingAnalysis, TimingPath
from repro.circuit.eventsim import EventSimulator, SimulationResult
from repro.circuit.dta import DynamicTimingAnalysis, DtaOutcome
from repro.circuit.backend import (
    TIMING_BACKENDS,
    DEFAULT_TIMING_BACKEND,
    BatchOutcome,
    TimingBackend,
    make_timing_backend,
    pack_input_words,
    stream_words,
    unpack_input_words,
)
from repro.circuit.bitsim import BitParallelSimulator, BitParallelTimingAnalysis

__all__ = [
    "Cell",
    "CellLibrary",
    "default_library",
    "OperatingPoint",
    "VoltageScalingModel",
    "VR15",
    "VR20",
    "NOMINAL",
    "Gate",
    "Netlist",
    "NetlistBuilder",
    "annotate_interconnect",
    "StaticTimingAnalysis",
    "TimingPath",
    "EventSimulator",
    "SimulationResult",
    "DynamicTimingAnalysis",
    "DtaOutcome",
    "TIMING_BACKENDS",
    "DEFAULT_TIMING_BACKEND",
    "BatchOutcome",
    "TimingBackend",
    "make_timing_backend",
    "pack_input_words",
    "stream_words",
    "unpack_input_words",
    "BitParallelSimulator",
    "BitParallelTimingAnalysis",
]
