"""Gate-level stage netlists of the marocchino-like core (Fig. 4 substrate).

Builds one representative post-synthesis netlist per pipeline stage of the
target core: the five scalar pipeline stages (whose paths are short — the
reason non-FPU instructions are timing-safe) and the FPU stages of Fig. 3
(pre-normalise, align, mantissa add, multiplier array, normalise/round —
the long, error-prone paths).  Static timing analysis over these stages
yields the Eq. 1 clock period and the Fig. 4 longest-path distribution.

The multiplier mantissa array is built at half mantissa width (one of the
two interleaved halves of the DP array, see DESIGN.md) to keep the gate
count tractable; path-depth ordering between stages is preserved.
"""

from __future__ import annotations

from typing import Dict, List

from repro.circuit.builder import NetlistBuilder
from repro.circuit.netlist import Netlist
from repro.circuit.sdf import annotate_interconnect

#: Stage name -> whether it belongs to the FPU subsystem.
FPU_STAGES = {
    "fpu_prenorm": True,
    "fpu_align": True,
    "fpu_mantissa_add": True,
    "fpu_multiplier": True,
    "fpu_normalize": True,
    "if_stage": False,
    "id_stage": False,
    "ex_int": False,
    "lsu": False,
    "wb": False,
}


def _if_stage() -> Netlist:
    """Fetch: 32-bit PC incrementer."""
    builder = NetlistBuilder("if_stage")
    pc = builder.inputs("pc", 32)
    next_pc, _ = builder.incrementer(pc)
    builder.outputs(next_pc)
    return builder.build()


def _id_stage() -> Netlist:
    """Decode: 6-to-64 one-hot decoder plus a small control PLA."""
    builder = NetlistBuilder("id_stage")
    opcode = builder.inputs("op", 6)
    onehot = builder.decoder(opcode)
    controls = [builder.reduce_tree("OR2", onehot[i::8]) for i in range(8)]
    builder.outputs(onehot[:16])
    builder.outputs(controls)
    return builder.build()


def _ex_int() -> Netlist:
    """Integer execute: 32-bit carry-select ALU adder + logic unit."""
    builder = NetlistBuilder("ex_int")
    a = builder.inputs("a", 32)
    b = builder.inputs("b", 32)
    sums, cout = builder.carry_select_adder(a, b, block=4)
    logic = [builder.xor2(x, y) for x, y in zip(a, b)]
    builder.outputs(sums)
    builder.outputs([cout])
    builder.outputs(logic[:8])
    return builder.build()


def _lsu() -> Netlist:
    """Load/store: 32-bit address adder + alignment mux."""
    builder = NetlistBuilder("lsu")
    base = builder.inputs("base", 32)
    offset = builder.inputs("off", 32)
    address, _ = builder.carry_select_adder(base, offset, block=8)
    builder.outputs(address)
    return builder.build()


def _wb() -> Netlist:
    """Writeback: result-select mux tree."""
    builder = NetlistBuilder("wb")
    r0 = builder.inputs("r0", 16)
    r1 = builder.inputs("r1", 16)
    r2 = builder.inputs("r2", 16)
    sel0 = builder.netlist.add_input("sel0")
    sel1 = builder.netlist.add_input("sel1")
    first = [builder.mux2(a, b, sel0) for a, b in zip(r0, r1)]
    final = [builder.mux2(a, b, sel1) for a, b in zip(first, r2)]
    builder.outputs(final)
    return builder.build()


def _fpu_prenorm() -> Netlist:
    """FPU stage 1: exponent difference + leading-zero count."""
    builder = NetlistBuilder("fpu_prenorm")
    ea = builder.inputs("ea", 11)
    eb = builder.inputs("eb", 11)
    mant = builder.inputs("m", 24)
    diff, borrow = builder.subtractor(ea, eb)
    lz = builder.leading_zero_counter(mant)
    builder.outputs(diff)
    builder.outputs([borrow])
    builder.outputs(lz)
    return builder.build()


def _fpu_align() -> Netlist:
    """FPU stage 2: 56-bit alignment barrel shifter."""
    builder = NetlistBuilder("fpu_align")
    data = builder.inputs("d", 56)
    amount = builder.inputs("sh", 6)
    shifted = builder.barrel_shifter_right(data, amount)
    builder.outputs(shifted)
    return builder.build()


def _fpu_mantissa_add() -> Netlist:
    """FPU stage 4: 56-bit mantissa ripple-carry adder.

    marocchino's FPU is area-optimised; a plain ripple mantissa adder is
    the structure whose data-dependent carry chains the macro-timing
    model's add/sub path is calibrated against.
    """
    builder = NetlistBuilder("fpu_mantissa_add")
    a = builder.inputs("a", 56)
    b = builder.inputs("b", 56)
    sums, cout = builder.ripple_adder(a, b)
    builder.outputs(sums)
    builder.outputs([cout])
    return builder.build()


def _fpu_multiplier(width: int = 18) -> Netlist:
    """FPU multiply: mantissa array half (see module docstring)."""
    builder = NetlistBuilder("fpu_multiplier")
    a = builder.inputs("a", width)
    b = builder.inputs("b", width)
    product = builder.array_multiplier(a, b)
    builder.outputs(product)
    return builder.build()


def _fpu_normalize() -> Netlist:
    """FPU stages 5-6: LZC + left shifter + rounding incrementer."""
    builder = NetlistBuilder("fpu_normalize")
    data = builder.inputs("d", 56)
    lz = builder.leading_zero_counter(data[-28:])
    shifted = builder.barrel_shifter_left(data, lz[:6])
    rounded, _ = builder.incrementer(shifted[:53])
    builder.outputs(rounded)
    return builder.build()


_BUILDERS = {
    "if_stage": _if_stage,
    "id_stage": _id_stage,
    "ex_int": _ex_int,
    "lsu": _lsu,
    "wb": _wb,
    "fpu_prenorm": _fpu_prenorm,
    "fpu_align": _fpu_align,
    "fpu_mantissa_add": _fpu_mantissa_add,
    "fpu_multiplier": _fpu_multiplier,
    "fpu_normalize": _fpu_normalize,
}


def build_core_stages(annotate: bool = True,
                      seed: int = 45) -> Dict[str, Netlist]:
    """All pipeline-stage netlists, optionally with P&R wire delays."""
    stages: Dict[str, Netlist] = {}
    for name, factory in _BUILDERS.items():
        netlist = factory()
        if annotate:
            annotate_interconnect(netlist, seed=seed)
        stages[name] = netlist
    return stages


def is_fpu_stage(stage_name: str) -> bool:
    return FPU_STAGES.get(stage_name, False)
