"""Interconnect delay annotation (the place-and-route / SDF step).

After synthesis, the paper's flow runs Cadence Innovus and back-annotates
cell and wire delays through an SDF file.  The behaviour that matters for
timing-error modelling is that post-P&R delays acquire (a) a fanout-
dependent load component and (b) a placement-dependent spread that breaks
the perfect regularity of the synthesised structure.  We reproduce both
with a deterministic model: wire delay grows with fanout, plus a small
pseudo-random per-net jitter derived from a hash of the net name (so the
same netlist always annotates identically — our "placement" is
reproducible).
"""

from __future__ import annotations

import hashlib
from typing import Dict

from repro.circuit.netlist import Netlist

#: Delay added per unit of fanout (ps), representing wire + pin load.
FANOUT_DELAY_PS = 4.0

#: Half-width of the placement jitter window (ps).
PLACEMENT_JITTER_PS = 6.0

#: Fixed per-net route delay (ps).
BASE_WIRE_DELAY_PS = 3.0


def _net_jitter(netlist_name: str, net: str, seed: int) -> float:
    """Deterministic jitter in [-1, 1) for a net (stable 'placement')."""
    digest = hashlib.sha256(f"{seed}:{netlist_name}:{net}".encode()).digest()
    raw = int.from_bytes(digest[:8], "little")
    return (raw / 2**64) * 2.0 - 1.0


def annotate_interconnect(netlist: Netlist, seed: int = 45) -> Dict[str, float]:
    """Back-annotate wire delays onto every gate of ``netlist`` in place.

    Returns the net -> wire-delay map (the "SDF file").  The wire delay of
    a net is charged to its *driver* gate, matching how SDF IOPATH +
    INTERCONNECT entries combine in gate-level simulation.
    """
    fanout = netlist.fanout()
    sdf: Dict[str, float] = {}
    for gate in netlist.gates:
        net = gate.output
        loads = len(fanout.get(net, ()))
        jitter = _net_jitter(netlist.name, net, seed) * PLACEMENT_JITTER_PS
        wire = BASE_WIRE_DELAY_PS + FANOUT_DELAY_PS * loads + jitter
        gate.wire_delay_ps = max(0.0, wire)
        sdf[net] = gate.wire_delay_ps
    return sdf


def strip_interconnect(netlist: Netlist) -> None:
    """Remove all wire-delay annotation (back to pre-P&R timing)."""
    for gate in netlist.gates:
        gate.wire_delay_ps = 0.0
