"""Datapath netlist generators (the synthesis step of the ASIC flow).

These produce the gate-level structures that dominate FPU timing paths:
ripple-carry and carry-select adders, barrel shifters, array multipliers,
leading-zero counters, comparators and incrementers.  Built netlists are
real gate graphs — static timing analysis and event-driven simulation run
on them directly — so path depth, per-bit arrival skew, and data-dependent
activation all emerge from structure rather than being asserted.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.circuit.cells import CellLibrary, LIBRARY
from repro.circuit.netlist import Netlist


class NetlistBuilder:
    """Incrementally builds a :class:`Netlist` with fresh-net bookkeeping."""

    def __init__(self, name: str, library: CellLibrary = LIBRARY):
        self.netlist = Netlist(name, library=library)
        self._counter = 0
        self._const_cache = {}

    # -- plumbing ---------------------------------------------------------------
    def fresh(self, hint: str = "n") -> str:
        self._counter += 1
        return f"{hint}_{self._counter}"

    def inputs(self, prefix: str, width: int) -> List[str]:
        """Declare a little-endian input bus ``prefix[0..width)``."""
        return self.netlist.add_inputs(f"{prefix}[{i}]" for i in range(width))

    def outputs(self, nets: Sequence[str]) -> List[str]:
        return self.netlist.mark_outputs(nets)

    def gate(self, cell: str, inputs: Sequence[str], hint: str = "") -> str:
        out = self.fresh(hint or cell.lower())
        self.netlist.add_gate(cell, inputs, out)
        return out

    def const(self, value: int) -> str:
        """A constant-0 or constant-1 net, driven by a tie cell."""
        value &= 1
        if value not in self._const_cache:
            cell = "TIE1" if value else "TIE0"
            self._const_cache[value] = self.gate(cell, [], hint=cell.lower())
        return self._const_cache[value]

    # -- boolean helpers ----------------------------------------------------------
    def inv(self, a: str) -> str:
        return self.gate("INV", [a])

    def and2(self, a: str, b: str) -> str:
        return self.gate("AND2", [a, b])

    def or2(self, a: str, b: str) -> str:
        return self.gate("OR2", [a, b])

    def xor2(self, a: str, b: str) -> str:
        return self.gate("XOR2", [a, b])

    def mux2(self, d0: str, d1: str, sel: str) -> str:
        return self.gate("MUX2", [d0, d1, sel])

    def reduce_tree(self, cell2: str, nets: Sequence[str]) -> str:
        """Balanced binary reduction (e.g. wide OR) — log-depth, like synthesis."""
        nets = list(nets)
        if not nets:
            raise ValueError("reduce_tree needs at least one net")
        while len(nets) > 1:
            nxt = []
            for i in range(0, len(nets) - 1, 2):
                nxt.append(self.gate(cell2, [nets[i], nets[i + 1]]))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    # -- arithmetic blocks ----------------------------------------------------------
    def full_adder(self, a: str, b: str, cin: str) -> Tuple[str, str]:
        """(sum, carry-out) built from XOR3 + MAJ3 cells."""
        s = self.gate("XOR3", [a, b, cin], hint="fa_s")
        c = self.gate("MAJ3", [a, b, cin], hint="fa_c")
        return s, c

    def half_adder(self, a: str, b: str) -> Tuple[str, str]:
        s = self.gate("XOR2", [a, b], hint="ha_s")
        c = self.gate("AND2", [a, b], hint="ha_c")
        return s, c

    def ripple_adder(self, a: Sequence[str], b: Sequence[str],
                     cin: Optional[str] = None) -> Tuple[List[str], str]:
        """Ripple-carry adder; returns (sum bits, carry-out).

        The carry ripple is the canonical data-dependent long path: the
        settle time of bit i tracks the longest carry chain ending at i,
        which is exactly the behaviour the macro-timing model in
        :mod:`repro.fpu.timing` is calibrated against.
        """
        if len(a) != len(b):
            raise ValueError("operand widths differ")
        carry = cin if cin is not None else self.const(0)
        sums: List[str] = []
        for ai, bi in zip(a, b):
            s, carry = self.full_adder(ai, bi, carry)
            sums.append(s)
        return sums, carry

    def carry_select_adder(self, a: Sequence[str], b: Sequence[str],
                           block: int = 4,
                           cin: Optional[str] = None) -> Tuple[List[str], str]:
        """Carry-select adder with fixed block size (a realistic fast adder)."""
        if len(a) != len(b):
            raise ValueError("operand widths differ")
        carry = cin if cin is not None else self.const(0)
        sums: List[str] = []
        for lo in range(0, len(a), block):
            hi = min(lo + block, len(a))
            seg_a, seg_b = list(a[lo:hi]), list(b[lo:hi])
            s0, c0 = self.ripple_adder(seg_a, seg_b, cin=self.const(0))
            s1, c1 = self.ripple_adder(seg_a, seg_b, cin=self.const(1))
            for bit0, bit1 in zip(s0, s1):
                sums.append(self.mux2(bit0, bit1, carry))
            carry = self.mux2(c0, c1, carry)
        return sums, carry

    def subtractor(self, a: Sequence[str], b: Sequence[str]) -> Tuple[List[str], str]:
        """a - b via two's complement; returns (difference, borrow-free flag)."""
        b_inv = [self.inv(bit) for bit in b]
        diff, carry = self.ripple_adder(a, b_inv, cin=self.const(1))
        return diff, carry  # carry==1 means a >= b (no borrow)

    def incrementer(self, a: Sequence[str]) -> Tuple[List[str], str]:
        """a + 1 as a half-adder chain (PC incrementer, rounding increment)."""
        carry = self.const(1)
        sums: List[str] = []
        for bit in a:
            s, carry = self.half_adder(bit, carry)
            sums.append(s)
        return sums, carry

    def comparator_eq(self, a: Sequence[str], b: Sequence[str]) -> str:
        """Equality: reduce XNOR bits with an AND tree."""
        if len(a) != len(b):
            raise ValueError("operand widths differ")
        eq_bits = [self.gate("XNOR2", [ai, bi]) for ai, bi in zip(a, b)]
        return self.reduce_tree("AND2", eq_bits)

    def comparator_ge(self, a: Sequence[str], b: Sequence[str]) -> str:
        """Unsigned a >= b via the subtractor's carry-out."""
        _, no_borrow = self.subtractor(a, b)
        return no_borrow

    def barrel_shifter_right(self, data: Sequence[str],
                             amount: Sequence[str]) -> List[str]:
        """Logical right barrel shifter (mantissa alignment, Fig. 3 stage 2).

        log2(width) mux stages; amount is little-endian.  Vacated positions
        fill with zero.
        """
        zero = self.const(0)
        current = list(data)
        for stage, sel in enumerate(amount):
            shift = 1 << stage
            nxt = []
            for i in range(len(current)):
                shifted = current[i + shift] if i + shift < len(current) else zero
                nxt.append(self.mux2(current[i], shifted, sel))
            current = nxt
        return current

    def barrel_shifter_left(self, data: Sequence[str],
                            amount: Sequence[str]) -> List[str]:
        """Logical left barrel shifter (post-normalisation, Fig. 3 stage 5)."""
        zero = self.const(0)
        current = list(data)
        for stage, sel in enumerate(amount):
            shift = 1 << stage
            nxt = []
            for i in range(len(current)):
                shifted = current[i - shift] if i - shift >= 0 else zero
                nxt.append(self.mux2(current[i], shifted, sel))
            current = nxt
        return current

    def leading_zero_counter(self, data: Sequence[str]) -> List[str]:
        """Count of leading (most-significant) zeros, little-endian result.

        Standard recursive LZC composition; width is padded to a power of
        two with zeros on the LSB side (which cannot introduce leading
        zeros at the MSB side).
        """
        width = len(data)
        size = 1
        while size < width:
            size *= 2
        padded = [self.const(0)] * (size - width) + list(data)

        def lzc(bits: List[str]) -> Tuple[List[str], str]:
            # returns (count bits little-endian, all-zero flag)
            if len(bits) == 1:
                return [], self.inv(bits[0])
            half = len(bits) // 2
            hi_cnt, hi_zero = lzc(bits[half:])   # MSB half
            lo_cnt, lo_zero = lzc(bits[:half])   # LSB half
            count_bits = [
                self.mux2(h, l, hi_zero) for h, l in zip(hi_cnt, lo_cnt)
            ]
            count_bits.append(hi_zero)
            both_zero = self.and2(hi_zero, lo_zero)
            return count_bits, both_zero

        count, all_zero = lzc(padded)
        count.append(all_zero)  # MSB: saturation flag when input is all zeros
        return count

    def array_multiplier(self, a: Sequence[str],
                         b: Sequence[str]) -> List[str]:
        """Unsigned array multiplier: AND partial products + carry-save rows.

        This is the structure behind the fp-mul critical path: the final
        row's carry propagation across ~2w bits is the longest path in the
        whole FPU (Fig. 4), and its activation depends on operand bit
        patterns — the root cause of fp-mul being the most error-prone
        instruction in Fig. 7.
        """
        wa, wb = len(a), len(b)
        zero = self.const(0)
        # Row 0 of partial sums.
        acc: List[str] = [self.and2(a[i], b[0]) for i in range(wa)] + [zero] * wb
        for j in range(1, wb):
            pp = [self.and2(a[i], b[j]) for i in range(wa)]
            carry = zero
            for i in range(wa):
                s, carry = self.full_adder(acc[i + j], pp[i], carry)
                acc[i + j] = s
            # Propagate the final row carry upward.
            k = j + wa
            while k < len(acc):
                s, carry = self.half_adder(acc[k], carry)
                acc[k] = s
                if carry is zero:
                    break
                k += 1
        return acc[: wa + wb]

    def decoder(self, select: Sequence[str]) -> List[str]:
        """n-to-2^n one-hot decoder (instruction decode stage)."""
        outputs = [self.const(1)]
        for sel in select:
            inv = self.inv(sel)
            nxt = []
            for net in outputs:
                nxt.append(self.and2(net, inv))
            for net in outputs:
                nxt.append(self.and2(net, sel))
            outputs = nxt
        return outputs

    def build(self) -> Netlist:
        """Validate and return the finished netlist."""
        self.netlist.validate()
        return self.netlist


# -- canned blocks used by the core model and tests --------------------------------

def build_adder(width: int, kind: str = "ripple", name: str = "") -> Netlist:
    """A standalone adder netlist with buses a, b and outputs s, cout."""
    builder = NetlistBuilder(name or f"{kind}_adder{width}")
    a = builder.inputs("a", width)
    b = builder.inputs("b", width)
    if kind == "ripple":
        sums, cout = builder.ripple_adder(a, b)
    elif kind == "carry_select":
        sums, cout = builder.carry_select_adder(a, b)
    else:
        raise ValueError(f"unknown adder kind {kind!r}")
    builder.outputs(sums)
    builder.outputs([cout])
    return builder.build()


def build_multiplier(width: int, name: str = "") -> Netlist:
    """A standalone width x width array multiplier netlist."""
    builder = NetlistBuilder(name or f"array_mul{width}")
    a = builder.inputs("a", width)
    b = builder.inputs("b", width)
    product = builder.array_multiplier(a, b)
    builder.outputs(product)
    return builder.build()


def build_shifter(width: int, direction: str = "right", name: str = "") -> Netlist:
    """A standalone barrel shifter netlist (amount bus is ceil(log2(width)))."""
    import math

    amount_bits = max(1, math.ceil(math.log2(width)))
    builder = NetlistBuilder(name or f"shifter{width}_{direction}")
    data = builder.inputs("d", width)
    amount = builder.inputs("sh", amount_bits)
    if direction == "right":
        out = builder.barrel_shifter_right(data, amount)
    elif direction == "left":
        out = builder.barrel_shifter_left(data, amount)
    else:
        raise ValueError(f"unknown direction {direction!r}")
    builder.outputs(out)
    return builder.build()


def build_lzc(width: int, name: str = "") -> Netlist:
    """A standalone leading-zero counter netlist."""
    builder = NetlistBuilder(name or f"lzc{width}")
    data = builder.inputs("d", width)
    count = builder.leading_zero_counter(data)
    builder.outputs(count)
    return builder.build()


def bus_values(prefix: str, width: int, value: int):
    """Input assignment dict for a little-endian bus (includes nothing else)."""
    return {f"{prefix}[{i}]": (value >> i) & 1 for i in range(width)}


def bus_from_values(values, prefix: str, width: int) -> int:
    """Read a little-endian bus out of a net-value mapping."""
    out = 0
    for i in range(width):
        if values[f"{prefix}[{i}]"]:
            out |= 1 << i
    return out
