"""Batch-first timing-backend API.

This module defines the engine-neutral surface of dynamic timing
analysis: a :class:`TimingBackend` runs *batches* of back-to-back input
transitions and reports per-lane verdicts as a :class:`BatchOutcome`.
Two engines implement it:

- ``event`` — :class:`repro.circuit.dta.DynamicTimingAnalysis`, the
  event-driven reference (bit- and picosecond-exact, one lane at a time),
- ``bitparallel`` — :class:`repro.circuit.bitsim.BitParallelTimingAnalysis`,
  the levelized bit-parallel engine (64 lanes per machine word, numpy
  words for wider batches) with verdicts bit-identical to the reference.

Lane encoding: a *word* is a Python int carrying one bit per batch lane
(bit ``j`` = lane ``j``).  A batch input is one word per primary input
net, in ``netlist.inputs`` order, so lane ``j`` of the batch is the
vector ``{net_i: (words[i] >> j) & 1}``.  :func:`pack_input_words` /
:func:`unpack_input_words` convert between word form and the legacy
per-vector dict form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Protocol, Sequence, Tuple, runtime_checkable

from repro.circuit.netlist import Netlist
from repro import telemetry

#: Names accepted by :func:`make_timing_backend` (and ``--timing-backend``).
TIMING_BACKENDS: Tuple[str, ...] = ("event", "bitparallel")

DEFAULT_TIMING_BACKEND = "event"


def pack_input_words(netlist: Netlist,
                     vectors: Sequence[Dict[str, int]]) -> List[int]:
    """Pack per-vector input dicts into one lane-word per input net.

    Word ``i`` holds, at bit ``j``, the value of input net
    ``netlist.inputs[i]`` in ``vectors[j]``.
    """
    words = [0] * len(netlist.inputs)
    for j, vector in enumerate(vectors):
        bit = 1 << j
        for i, net in enumerate(netlist.inputs):
            if net not in vector:
                raise ValueError(f"missing value for input net {net!r}")
            if vector[net] & 1:
                words[i] |= bit
    return words


def unpack_input_words(netlist: Netlist, words: Sequence[int],
                       count: int) -> List[Dict[str, int]]:
    """Inverse of :func:`pack_input_words`: words back to per-lane dicts."""
    if len(words) != len(netlist.inputs):
        raise ValueError(
            f"expected {len(netlist.inputs)} input words, got {len(words)}"
        )
    return [
        {net: (words[i] >> j) & 1 for i, net in enumerate(netlist.inputs)}
        for j in range(count)
    ]


def stream_words(netlist: Netlist,
                 vectors: Sequence[Dict[str, int]]) -> Tuple[List[int], List[int], int]:
    """Pack a back-to-back vector stream into (prev, cur) batch words.

    A stream of ``n + 1`` vectors yields ``n`` transition lanes: lane
    ``j`` is the transition ``vectors[j] -> vectors[j + 1]``.  Returns
    ``(prev_words, cur_words, n)``.
    """
    count = len(vectors) - 1
    if count < 1:
        return [0] * len(netlist.inputs), [0] * len(netlist.inputs), 0
    full = pack_input_words(netlist, vectors)
    mask = (1 << count) - 1
    prev = [w & mask for w in full]
    cur = [w >> 1 for w in full]
    return prev, cur, count


@dataclass(frozen=True)
class BatchOutcome:
    """Per-lane DTA verdicts for one batch of input transitions.

    ``golden``/``sampled``/``bitmask`` are per-lane packed output words
    (bit ``i`` = primary output ``outputs[i]``), exactly the fields of
    :class:`repro.circuit.dta.DtaOutcome` for that lane.
    ``worst_settle_ps`` is the per-lane latest settling time of the
    *final output waveform* (zero-width hazard pulses excluded — see
    DESIGN.md section 12 for how this relates to the event engine's
    hazard-inclusive settle bookkeeping).
    """

    outputs: Tuple[str, ...]
    golden: Tuple[int, ...]
    sampled: Tuple[int, ...]
    bitmask: Tuple[int, ...]
    worst_settle_ps: Tuple[float, ...]

    def __len__(self) -> int:
        return len(self.golden)

    @property
    def faulty(self) -> Tuple[bool, ...]:
        return tuple(mask != 0 for mask in self.bitmask)

    @property
    def error_count(self) -> int:
        return sum(1 for mask in self.bitmask if mask)

    def error_ratio(self) -> float:
        if not self.golden:
            raise ValueError("empty batch has no error ratio")
        return self.error_count / len(self.golden)

    def outcome(self, lane: int):
        """The lane's verdict as a legacy :class:`DtaOutcome`."""
        from repro.circuit.dta import DtaOutcome

        return DtaOutcome(
            golden=self.golden[lane],
            sampled=self.sampled[lane],
            bitmask=self.bitmask[lane],
            worst_settle_ps=self.worst_settle_ps[lane],
        )

    def outcomes(self) -> List:
        return [self.outcome(j) for j in range(len(self.golden))]


@runtime_checkable
class TimingBackend(Protocol):
    """Engine-neutral DTA interface; ``analyze_batch`` is the hot path."""

    name: str
    netlist: Netlist
    clock_ps: float
    delay_factor: float

    def analyze_batch(self, prev_words: Sequence[int],
                      cur_words: Sequence[int], *,
                      count: int) -> BatchOutcome:
        """DTA for ``count`` lanes of back-to-back input transitions."""
        ...  # pragma: no cover - protocol


class BatchTimingMixin:
    """Legacy per-pair surface expressed over ``analyze_batch``.

    Both engines inherit these wrappers so migrated and unmigrated
    callers observe identical verdicts regardless of entry point.
    """

    def analyze_transition(self, previous: Dict[str, int],
                           current: Dict[str, int]):
        """DTA for a single back-to-back input pair.

        .. deprecated:: delegates to :meth:`analyze_batch` with a batch
           of one; new code should pack transitions into lane words and
           call the batch API directly.
        """
        prev_w = pack_input_words(self.netlist, [previous])
        cur_w = pack_input_words(self.netlist, [current])
        return self.analyze_batch(prev_w, cur_w, count=1).outcome(0)

    def analyze_sequence(self, vectors: Sequence[Dict[str, int]]) -> List:
        """DTA over a stream of input vectors applied back-to-back.

        The first vector only initialises the circuit state (no outcome
        is emitted for it), matching the paper's per-cycle model where
        each instruction's timing depends on the previous circuit state.

        .. deprecated:: delegates to one :meth:`analyze_batch` call over
           the packed stream; new code should use the batch API.
        """
        with telemetry.span("dta.sequence", netlist=self.netlist.name,
                            vectors=len(vectors)):
            prev, cur, count = stream_words(self.netlist, vectors)
            if count == 0:
                return []
            return self.analyze_batch(prev, cur, count=count).outcomes()

    def error_ratio(self, vectors: Sequence[Dict[str, int]]) -> float:
        """Eq. 2 over a vector stream: faulty / total transitions."""
        outcomes = self.analyze_sequence(vectors)
        if not outcomes:
            raise ValueError("need at least two vectors for a transition")
        return sum(1 for o in outcomes if o.faulty) / len(outcomes)


def make_timing_backend(name: str, netlist: Netlist, clock_ps: float,
                        delay_factor: float) -> TimingBackend:
    """Instantiate a registered timing backend by name."""
    if name == "event":
        from repro.circuit.dta import DynamicTimingAnalysis

        return DynamicTimingAnalysis(netlist, clock_ps=clock_ps,
                                     delay_factor=delay_factor)
    if name == "bitparallel":
        from repro.circuit.bitsim import BitParallelTimingAnalysis

        return BitParallelTimingAnalysis(netlist, clock_ps=clock_ps,
                                         delay_factor=delay_factor)
    raise ValueError(
        f"unknown timing backend {name!r}; expected one of {TIMING_BACKENDS}"
    )
