"""Levelized bit-parallel gate simulation (batched DTA engine).

The event-driven reference (:mod:`repro.circuit.eventsim`) walks one
transition at a time, one heap event per net toggle.  This module runs
*batches*: the netlist is levelized once (topological gate order, nets
renamed to dense integer ids, cell functions compiled to mask-aware
bitwise kernels), and every net carries a *lane word* holding one bit
per batch vector — a single Python-int/uint64 bitwise op evaluates a
gate for 64 lanes at once, with a numpy ``uint64``-array variant for
wider batches.

Timing is reproduced exactly by walking event *times* instead of
events: at each scheduled time, all pending net-word updates are applied
first, then every gate with a changed input (in any lane) is evaluated
once against the fully-updated words and its output word is scheduled
one gate delay later.  Because the transport-delay waveform of the
event simulator satisfies ``out(t) = f(inputs(t - delay))``, this walk
reproduces the reference waveform per lane bit-for-bit, so golden,
sampled and fault-mask verdicts are bit-identical to
``EventSimulator`` + ``DynamicTimingAnalysis``.  The one deliberate
difference: per-net settle times track the final waveform only, so
zero-width hazard pulses (transient glitches that revert within a
single timestamp) do not advance ``worst_settle_ps`` the way the
reference's per-event bookkeeping does; verdicts are unaffected.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.backend import BatchOutcome, BatchTimingMixin
from repro.circuit.cells import Cell
from repro.circuit.netlist import Netlist
from repro import telemetry

#: Batches at or below this lane count run on Python-int words (a single
#: machine word for <= 64 lanes); larger batches switch to numpy uint64
#: arrays.  Python big-int kernels stay competitive far past 64 lanes
#: because each gate is one interpreter dispatch regardless of width;
#: measured on the stock datapaths the numpy variant only wins once
#: words span >= ~128 machine words.
AUTO_NUMPY_LANES = 8192

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class _IntOps:
    """Lane words as Python ints (arbitrary precision, 64-bit fast path)."""

    kind = "int"

    @staticmethod
    def make_mask(count: int) -> int:
        return (1 << count) - 1

    @staticmethod
    def from_int(word: int, count: int) -> int:
        return word & ((1 << count) - 1)

    @staticmethod
    def to_int(word: int) -> int:
        return word

    @staticmethod
    def is_zero(word: int) -> bool:
        return word == 0

    @staticmethod
    def bits(word: int, count: int) -> np.ndarray:
        raw = word.to_bytes((count + 7) // 8, "little")
        return np.unpackbits(np.frombuffer(raw, dtype=np.uint8),
                             count=count, bitorder="little").astype(bool)


class _ArrayOps:
    """Lane words as little-endian numpy uint64 arrays (wide batches)."""

    kind = "numpy"

    @staticmethod
    def make_mask(count: int) -> np.ndarray:
        nwords = (count + 63) // 64
        mask = np.full(nwords, _ALL_ONES, dtype=np.uint64)
        rem = count & 63
        if rem:
            mask[-1] = np.uint64((1 << rem) - 1)
        return mask

    @staticmethod
    def from_int(word: int, count: int) -> np.ndarray:
        nwords = (count + 63) // 64
        word &= (1 << count) - 1
        return np.frombuffer(word.to_bytes(nwords * 8, "little"), dtype="<u8")

    @staticmethod
    def to_int(word: np.ndarray) -> int:
        return int.from_bytes(word.tobytes(), "little")

    @staticmethod
    def is_zero(word: np.ndarray) -> bool:
        return not word.any()

    @staticmethod
    def bits(word: np.ndarray, count: int) -> np.ndarray:
        return np.unpackbits(word.view(np.uint8), count=count,
                             bitorder="little").astype(bool)


_LANE_OPS = {"int": _IntOps, "numpy": _ArrayOps}

# Mask-aware bitwise kernels: ``m`` is the all-lanes-set word, so NOT is
# ``m ^ x``.  Written against &, |, ^ only, they work unchanged on both
# Python ints and numpy uint64 arrays.
_BITWISE: Dict[str, Callable] = {
    "INV": lambda m, a: m ^ a,
    "BUF": lambda m, a: a,
    "NAND2": lambda m, a, b: m ^ (a & b),
    "NOR2": lambda m, a, b: m ^ (a | b),
    "AND2": lambda m, a, b: a & b,
    "OR2": lambda m, a, b: a | b,
    "XOR2": lambda m, a, b: a ^ b,
    "XNOR2": lambda m, a, b: m ^ a ^ b,
    "NAND3": lambda m, a, b, c: m ^ (a & b & c),
    "NOR3": lambda m, a, b, c: m ^ (a | b | c),
    "AND3": lambda m, a, b, c: a & b & c,
    "OR3": lambda m, a, b, c: a | b | c,
    "XOR3": lambda m, a, b, c: a ^ b ^ c,
    "MUX2": lambda m, d0, d1, s: (d1 & s) | (d0 & (m ^ s)),
    "AOI21": lambda m, a, b, c: m ^ ((a & b) | c),
    "OAI21": lambda m, a, b, c: m ^ ((a | b) & c),
    "MAJ3": lambda m, a, b, c: (a & b) | (b & c) | (a & c),
    "DFF": lambda m, a: a,
    "TIE0": lambda m: m ^ m,
    # TIE1 must return a *fresh* all-ones word: aliasing the shared mask
    # array would be unsafe if a caller ever mutated a value word.
    "TIE1": lambda m: (m ^ m) | m,
}

_FN_CACHE: Dict[Cell, Callable] = {}


def _minterm_fn(cell: Cell) -> Callable:
    """Generic bitwise kernel from the cell's truth table (sum of minterms)."""
    n = cell.inputs
    minterms = [row for row in range(1 << n)
                if cell.evaluate(tuple((row >> i) & 1 for i in range(n)))]

    def fn(m, *args):
        acc = m ^ m
        for row in minterms:
            term = m
            for i, a in enumerate(args):
                term = term & (a if (row >> i) & 1 else (m ^ a))
            acc = acc | term
        return acc

    return fn


def compile_cell(cell: Cell) -> Callable:
    """Bitwise kernel for ``cell``, validated against ``cell.evaluate``.

    Hand-written kernels cover the stock library; any other cell (or a
    same-named cell whose function was overridden) falls back to a
    truth-table-derived kernel that is correct by construction.
    """
    cached = _FN_CACHE.get(cell)
    if cached is not None:
        return cached
    fn = _BITWISE.get(cell.name)
    if fn is not None:
        for row in range(1 << cell.inputs):
            args = tuple((row >> i) & 1 for i in range(cell.inputs))
            if (fn(1, *args) & 1) != cell.evaluate(args):
                fn = None
                break
    if fn is None:
        fn = _minterm_fn(cell)
    _FN_CACHE[cell] = fn
    return fn


@dataclass
class BatchSimResult:
    """Raw walk output: per-primary-output lane words plus timing arrays."""

    final_words: List[int]
    sampled_words: List[int]
    last_change_ps: np.ndarray  # (n_outputs, count) float64
    gate_evals: int
    lane_mode: str


class BitParallelSimulator:
    """Levelized batch simulator over a fixed netlist and delay factor."""

    def __init__(self, netlist: Netlist, delay_factor: float = 1.0):
        if delay_factor <= 0:
            raise ValueError("delay_factor must be positive")
        self.netlist = netlist
        self.delay_factor = delay_factor
        nets = netlist.nets
        net_ids = {net: i for i, net in enumerate(nets)}
        self._n_nets = len(nets)
        self._input_ids = [net_ids[n] for n in netlist.inputs]
        self._output_ids = [net_ids[n] for n in netlist.outputs]
        # Levelized program: gates in dataflow order, nets as dense ids.
        # Delays are pre-scaled with the exact expression the event
        # simulator uses (delay_ps * factor), keeping float timestamps
        # identical between engines.
        self._gates: List[Tuple[Callable, Tuple[int, ...], int, float]] = []
        self._fanout: List[List[int]] = [[] for _ in range(len(nets))]
        for g_idx, gate in enumerate(netlist.topological_order()):
            entry = (
                compile_cell(gate.cell),
                tuple(net_ids[n] for n in gate.inputs),
                net_ids[gate.output],
                gate.delay_ps * delay_factor,
            )
            self._gates.append(entry)
            for in_id in entry[1]:
                self._fanout[in_id].append(g_idx)

    def _lane_ops(self, count: int, lane_mode: Optional[str]):
        if lane_mode is None:
            lane_mode = "int" if count <= AUTO_NUMPY_LANES else "numpy"
        try:
            return _LANE_OPS[lane_mode]
        except KeyError:
            raise ValueError(
                f"unknown lane mode {lane_mode!r}; expected 'int' or 'numpy'"
            ) from None

    def _settle(self, input_words: Sequence[int], count: int, ops, mask):
        """Zero-delay levelized evaluation; per-net lane words."""
        if len(input_words) != len(self._input_ids):
            raise ValueError(
                f"expected {len(self._input_ids)} input words, "
                f"got {len(input_words)}"
            )
        values: List = [None] * self._n_nets
        for net_id, word in zip(self._input_ids, input_words):
            values[net_id] = ops.from_int(word, count)
        for fn, in_ids, out_id, _ in self._gates:
            values[out_id] = fn(mask, *[values[i] for i in in_ids])
        return values

    def settle_output_words(self, input_words: Sequence[int],
                            count: int) -> List[int]:
        """Golden reference: zero-delay output lane words."""
        ops = _IntOps
        values = self._settle(input_words, count, ops, ops.make_mask(count))
        return [values[i] for i in self._output_ids]

    def simulate_batch(self, prev_words: Sequence[int],
                       cur_words: Sequence[int], count: int,
                       sample_at: float,
                       lane_mode: Optional[str] = None) -> BatchSimResult:
        """Settle at ``prev``, transition to ``cur``, sample at ``sample_at``.

        One walk covers all ``count`` lanes; lanes are independent
        transitions exactly as if each had been run through
        :class:`~repro.circuit.eventsim.EventSimulator` alone.
        """
        if count < 1:
            raise ValueError("batch must contain at least one lane")
        ops = self._lane_ops(count, lane_mode)
        mask = ops.make_mask(count)
        values = self._settle(prev_words, count, ops, mask)

        out_row = {net_id: row for row, net_id in enumerate(self._output_ids)}
        sampled = [values[i] for i in self._output_ids]
        last_change = np.zeros((len(self._output_ids), count), dtype=np.float64)

        gates = self._gates
        fanout = self._fanout
        heap: List[float] = []
        pending: Dict[float, Dict[int, object]] = {}

        def schedule(time: float, net_id: int, word) -> None:
            slot = pending.get(time)
            if slot is None:
                pending[time] = slot = {}
                heapq.heappush(heap, time)
            # A net has one driver with a fixed delay, so two words can
            # never collide on the same (time, net) slot.
            slot[net_id] = word

        for net_id, word in zip(self._input_ids, cur_words):
            new = ops.from_int(word, count)
            if not ops.is_zero(values[net_id] ^ new):
                schedule(0.0, net_id, new)

        evals = 0
        while heap:
            time = heapq.heappop(heap)
            updates = pending.pop(time)
            triggered: Dict[int, None] = {}
            for net_id, word in updates.items():
                changed = values[net_id] ^ word
                if ops.is_zero(changed):
                    continue
                values[net_id] = word
                row = out_row.get(net_id)
                if row is not None:
                    if time <= sample_at:
                        sampled[row] = word
                    last_change[row][ops.bits(changed, count)] = time
                for g_idx in fanout[net_id]:
                    triggered[g_idx] = None
            for g_idx in triggered:
                fn, in_ids, net_out, delay = gates[g_idx]
                schedule(time + delay, net_out,
                         fn(mask, *[values[i] for i in in_ids]))
                evals += 1

        telemetry.count("bitsim.batches")
        telemetry.count("bitsim.lanes", count)
        telemetry.count("bitsim.gate_evals", evals)
        return BatchSimResult(
            final_words=[ops.to_int(values[i]) for i in self._output_ids],
            sampled_words=[ops.to_int(w) for w in sampled],
            last_change_ps=last_change,
            gate_evals=evals,
            lane_mode=ops.kind,
        )


def _pack_lanes(words: Sequence[int], count: int) -> Tuple[int, ...]:
    """Transpose per-output lane words into per-lane packed output ints."""
    n_out = len(words)
    if n_out == 0:
        return (0,) * count
    bits = np.stack([_IntOps.bits(w, count) for w in words])
    if n_out < 64:
        weights = np.uint64(1) << np.arange(n_out, dtype=np.uint64)
        vals = (bits.T.astype(np.uint64) * weights).sum(axis=1,
                                                        dtype=np.uint64)
        return tuple(int(v) for v in vals)
    lanes = [0] * count
    for i, word in enumerate(words):
        bit = 1 << i
        for j in np.flatnonzero(bits[i]):
            lanes[j] |= bit
    return tuple(lanes)


class BitParallelTimingAnalysis(BatchTimingMixin):
    """Bit-parallel two-instance DTA; drop-in for ``DynamicTimingAnalysis``.

    Verdicts (golden, sampled, fault bitmask) are bit-identical to the
    event-driven engine; ``worst_settle_ps`` tracks final-waveform
    settling only (hazard pulses excluded), so it is <= the reference's
    value and equal whenever no zero-width hazard reaches an output.
    """

    name = "bitparallel"

    def __init__(self, netlist: Netlist, clock_ps: float,
                 delay_factor: float, lane_mode: Optional[str] = None):
        if clock_ps <= 0:
            raise ValueError("clock_ps must be positive")
        if delay_factor < 1.0:
            raise ValueError(
                "delay_factor below 1.0 means faster-than-nominal silicon; "
                "DTA models delay increase"
            )
        self.netlist = netlist
        self.clock_ps = clock_ps
        self.delay_factor = delay_factor
        self.lane_mode = lane_mode
        self._sim = BitParallelSimulator(netlist, delay_factor=delay_factor)

    def analyze_batch(self, prev_words: Sequence[int],
                      cur_words: Sequence[int], *,
                      count: int) -> BatchOutcome:
        """DTA verdicts for ``count`` lanes of back-to-back transitions."""
        golden_words = self._sim.settle_output_words(cur_words, count)
        result = self._sim.simulate_batch(
            prev_words, cur_words, count,
            sample_at=self.clock_ps, lane_mode=self.lane_mode,
        )
        golden = _pack_lanes(golden_words, count)
        sampled = _pack_lanes(result.sampled_words, count)
        if result.last_change_ps.size:
            worst = result.last_change_ps.max(axis=0)
        else:
            worst = np.zeros(count, dtype=np.float64)
        telemetry.count("dta.transitions", count)
        telemetry.observe("dta.settle_ps", float(worst.max(initial=0.0)))
        return BatchOutcome(
            outputs=tuple(self.netlist.outputs),
            golden=golden,
            sampled=sampled,
            bitmask=tuple(g ^ s for g, s in zip(golden, sampled)),
            worst_settle_ps=tuple(float(w) for w in worst),
        )
