"""Command-line interface: ``python -m repro <command>``.

Exposes the toolflow of Fig. 2 as commands:

- ``characterize`` — model-development phase: build and save DA/IA/WA
  artifacts for a benchmark,
- ``campaign``     — application-evaluation phase: run an injection
  campaign from a saved (or freshly built) model, optionally with a
  live terminal monitor (``--monitor``) and a per-run flight recorder
  (``--flight``, requires ``--trace``),
- ``trace``        — query a recorded trace: ``trace query`` filters
  flight records and prints per-run "why SDC?" drill-downs,
- ``report``       — render a journal + trace into one self-contained
  HTML page (``--html``),
- ``serve``        — post-hoc control plane: rebuild the ``/metrics``,
  ``/status`` and ``/trajectory`` HTTP endpoints from a finished
  campaign's journal,
- ``experiment``   — regenerate one paper artifact by id (fig4..fig10,
  table1, table2, avm),
- ``list``         — show available benchmarks and experiments.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro import telemetry
from repro.campaign.executor import CampaignExecutor, ExecutorConfig
from repro.campaign.fastforward import DEFAULT_INTERVAL, FastForwardConfig
from repro.campaign.report import executor_stats_table, outcome_table
from repro.campaign.runner import CampaignRunner
from repro.circuit.backend import DEFAULT_TIMING_BACKEND, TIMING_BACKENDS
from repro.circuit.liberty import TECHNOLOGY, VR15, VR20
from repro.errors import (
    CharacterizationPipeline,
    PipelineConfig,
    characterize_da,
    characterize_ia,
    characterize_wa,
    store,
)
from repro.experiments import REGISTRY, get_experiment
from repro.workloads import WORKLOADS, make_workload


def _points_for(reductions):
    return [TECHNOLOGY.operating_point(r / 100.0) for r in reductions]


def _check_parent_dir(path: str, flag: str) -> None:
    """Fail fast, clearly, when an output path's directory is missing."""
    parent = Path(path).resolve().parent
    if not parent.is_dir():
        raise SystemExit(
            f"error: {flag} {path!r}: parent directory {str(parent)!r} "
            f"does not exist (create it first)"
        )


def _cmd_list(args) -> int:
    print("benchmarks: " + ", ".join(sorted(WORKLOADS)))
    print("experiments: " + ", ".join(sorted(REGISTRY)))
    print("scales: tiny, small, paper")
    return 0


def _make_pipeline(args) -> "CharacterizationPipeline | None":
    """Build the parallel characterization pipeline from CLI flags.

    No pipeline flag at all keeps the legacy serial path (byte-stable
    model output); any of ``--workers`` / ``--chunk`` / ``--cache-dir``
    routes characterisation through :mod:`repro.errors.pipeline`.  The
    selected ``--timing-backend`` becomes part of every model cache key,
    so artifacts built by one engine are never served for the other.
    """
    if args.workers is None and args.chunk is None and not args.cache_dir:
        return None
    from repro.fpu.unit import DEFAULT_DTA_BATCH

    config = PipelineConfig(
        workers=args.workers or 0,
        chunk=args.chunk if args.chunk is not None else DEFAULT_DTA_BATCH,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        use_cache=bool(args.cache_dir) and not args.no_cache,
        timing_backend=getattr(args, "timing_backend",
                               DEFAULT_TIMING_BACKEND),
    )
    return CharacterizationPipeline(config)


def _cmd_characterize(args) -> int:
    from repro.fpu.unit import FPU

    points = _points_for(args.vr)
    pipeline = _make_pipeline(args)
    fpu = FPU(timing_backend=args.timing_backend)
    workload = make_workload(args.benchmark, scale=args.scale,
                             seed=args.seed)
    runner = CampaignRunner(workload, seed=args.seed)
    profile = runner.golden().profile
    out_dir = Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)

    if args.model in ("wa", "all"):
        path = store.save_wa(
            characterize_wa(profile, points, fpu=fpu, pipeline=pipeline),
            out_dir / f"wa_{args.benchmark}.json")
        print(f"wrote {path}")
    if args.model in ("ia", "all"):
        path = store.save_ia(
            characterize_ia(points, fpu=fpu, samples_per_op=args.samples,
                            seed=args.seed, pipeline=pipeline),
            out_dir / "ia.json",
        )
        print(f"wrote {path}")
    if args.model in ("da", "all"):
        path = store.save_da(
            characterize_da([profile], points, fpu=fpu,
                            sample_per_point=args.samples, seed=args.seed,
                            pipeline=pipeline),
            out_dir / "da.json",
        )
        print(f"wrote {path}")
    if pipeline is not None and pipeline.cache is not None:
        stats = pipeline.cache.stats()
        print(f"cache: {stats['hit']} hit(s), {stats['miss']} miss(es), "
              f"{stats['invalid']} invalid at {pipeline.cache.root}")
    return 0


def _parse_snapshot_interval(args):
    if args.snapshot_interval == "inf":
        return None
    try:
        return int(args.snapshot_interval)
    except ValueError:
        raise SystemExit(
            f"error: --snapshot-interval {args.snapshot_interval!r}: "
            f"expected a positive integer or 'inf'"
        )


def _cmd_campaign_sharded(args) -> int:
    """`campaign --shards N`: partition cells, run workers, merge.

    The campaign lives in the artifact store at ``--store``: staged
    models, the durable work queue, per-cell journals, and (after the
    merge) the archived inputs + canonical merged journal.  Re-running
    the same command is a resume — done cells stay done, in-flight
    journals resume, and the merge is idempotent.
    """
    from repro import chaos
    from repro.artifacts import ArtifactStore
    from repro.campaign.shard import CampaignSpec, ShardCoordinator
    from repro.observe.html_report import load_campaign_results

    if not args.store:
        raise SystemExit(
            "error: --shards needs --store DIR (the artifact store all "
            "shard workers share)")
    chaos_injector = chaos.install_from_env()
    points = _points_for(args.vr)
    store_root = Path(args.store)
    artifact_store = ArtifactStore.local(store_root)
    fastforward = FastForwardConfig(
        enabled=args.fast_forward,
        interval=_parse_snapshot_interval(args),
        # Snapshot pages go through the shared store, so every worker
        # reuses pages any other worker already built.
        page_store_dir=str(store_root) if args.fast_forward else None,
    )
    campaign_id = args.campaign_id or f"{args.benchmark}-s{args.seed}"

    if args.model_file:
        model = store.load_any(args.model_file)
    else:
        runner = CampaignRunner(
            make_workload(args.benchmark, scale=args.scale,
                          seed=args.seed), seed=args.seed)
        model = characterize_wa(runner.golden().profile, points)
    adaptive_dict = None
    if args.adaptive or args.importance:
        from dataclasses import asdict

        from repro.campaign.adaptive import AdaptiveConfig

        adaptive_dict = asdict(AdaptiveConfig(ci_target=args.ci_target,
                                              min_runs=args.min_runs,
                                              importance=args.importance))
    spec = CampaignSpec(
        campaign_id=campaign_id,
        benchmark=args.benchmark,
        scale=args.scale,
        seed=args.seed,
        runs=args.runs,
        shards=args.shards,
        points=tuple(CampaignSpec.point_dict(p) for p in points),
        models=(model.name,),
        adaptive=adaptive_dict,
        fastforward=fastforward.to_dict(),
        executor={"workers": args.workers,
                  "wall_clock_timeout": args.wall_timeout,
                  "fsync": args.fsync},
    )
    coordinator = ShardCoordinator.create(artifact_store, spec, [model])

    status_board = None
    control_plane = None
    if args.serve:
        from repro.observe.httpd import ControlPlane, StatusBoard
        from repro.telemetry import metrics as metrics_registry

        registry = metrics_registry.enable()
        status_board = StatusBoard()
        status_board.begin_campaign(
            args.benchmark, args.seed,
            cells_total=len(points) * len(spec.models),
            extra={"scale": args.scale, "runs_per_cell": args.runs,
                   "shards": args.shards})
        status_board.update_shards(coordinator.status())
        control_plane = ControlPlane(registry, status_board, None,
                                     port=args.metrics_port)
        bound = control_plane.start()
        print(f"control plane: http://127.0.0.1:{bound} "
              f"(/metrics /status)", file=sys.stderr)
        if args.port_file:
            _check_parent_dir(args.port_file, "--port-file")
            Path(args.port_file).write_text(f"{bound}\n",
                                            encoding="utf-8")

    try:
        if args.shard_procs:
            supervision = coordinator.run_processes(
                status_board=status_board)
            restarts = sum(supervision["restarts"].values())
        else:
            restarts = 0
            for summary in coordinator.run_inline():
                print(f"shard worker {summary['worker']}: "
                      f"{summary['items']} cell(s), "
                      f"{summary['runs']} run(s)", file=sys.stderr)
        if status_board is not None:
            status_board.update_shards(coordinator.status())
            status_board.close()

        if args.journal:
            _check_parent_dir(args.journal, "--journal")
            merged_path = Path(args.journal)
        else:
            merged_dir = store_root / "merged"
            merged_dir.mkdir(parents=True, exist_ok=True)
            merged_path = merged_dir / f"{campaign_id}.jsonl"
        report = coordinator.merge(merged_path)
    finally:
        if control_plane is not None:
            if args.serve_grace > 0:
                print(f"control plane: serving final state for "
                      f"{args.serve_grace:g}s more", file=sys.stderr)
                time.sleep(args.serve_grace)
            control_plane.close()
        if chaos_injector is not None:
            chaos.uninstall()

    results = load_campaign_results(merged_path)
    print(outcome_table(results))
    print()
    status = coordinator.status()
    print(f"sharded campaign {campaign_id!r}: {spec.shards} shard(s), "
          f"{status['done']}/{status['items']} cell(s) done, "
          f"{restarts} worker restart(s)")
    print(f"merged journal: {merged_path} ({report['runs']} run(s), "
          f"{report['cells']} cell summary(ies), {report['stops']} "
          f"stop decision(s); {report['torn_lines']} torn line(s) and "
          f"{report['crc_failures']} corrupt line(s) dropped)")
    manifest = report["manifest"]
    print(f"archived: {len(manifest['shards'])} shard journal(s) + "
          f"merged at {manifest['merged'][:12]}… in {store_root}")
    if args.runs and adaptive_dict is not None:
        budget = args.runs * len(results)
        executed = sum(r.counts.total for r in results)
        print(f"adaptive: {executed}/{budget} runs "
              f"({max(0, budget - executed)} saved)")
    stats = artifact_store.stats()
    if stats["corrupt"] or stats["quarantined"]:
        print(f"artifact store: {stats['corrupt']} corrupt object(s), "
              f"{stats['quarantined']} quarantined entr(ies) — "
              f"recomputed transparently")
    return 0


def _cmd_shard_worker(args) -> int:
    """`shard-worker`: one worker process of a sharded campaign."""
    import json as json_mod

    from repro import chaos
    from repro.campaign.shard import run_worker

    chaos_injector = chaos.install_from_env()
    try:
        summary = run_worker(args.store, args.campaign,
                             worker_id=args.worker_id, shard=args.shard,
                             steal=not args.no_steal, wait=not args.no_wait)
    finally:
        if chaos_injector is not None:
            chaos.uninstall()
    print(json_mod.dumps(summary))
    return 0


def _cmd_campaign(args) -> int:
    from repro import chaos

    if getattr(args, "shards", 0):
        return _cmd_campaign_sharded(args)
    if args.flight and not args.trace:
        raise SystemExit(
            "error: --flight records runs into the telemetry trace; "
            "pass --trace PATH as well"
        )
    # A supervising `repro chaos` process ships a fault plan through the
    # environment; outside a chaos run this is a no-op returning None.
    chaos_injector = chaos.install_from_env()
    if args.trace:
        args.telemetry = True  # --trace implies telemetry, explicitly
        _check_parent_dir(args.trace, "--trace")
    if args.journal:
        _check_parent_dir(args.journal, "--journal")
    sink = None
    if args.telemetry:
        collector = telemetry.enable()
        if args.trace:
            from repro.telemetry import JsonlSink

            sink = JsonlSink(args.trace, meta={"benchmark": args.benchmark,
                                               "scale": args.scale,
                                               "seed": args.seed})
            collector.add_sink(sink)
            # Cross-process stitching: spans closed anywhere in this
            # campaign — including inside forked workers — are stamped
            # with the campaign/cell/run coordinates and merged back
            # into this one trace file.
            telemetry.set_trace_context(telemetry.TraceContext(
                campaign_id=(f"{args.benchmark}-s{args.seed}"
                             f"-p{os.getpid()}")))
    if args.flight:
        from repro.observe import flight

        flight.enable(sink, keep_in_memory=False)
    if args.trajectory:
        _check_parent_dir(args.trajectory, "--trajectory")
    trajectory_recorder = None
    if args.trajectory or args.serve:
        from repro.observe import TrajectoryRecorder

        # Path-less recorders still collect in memory for /trajectory.
        trajectory_recorder = TrajectoryRecorder(path=args.trajectory)
    control_plane = None
    if args.serve:
        from repro.observe.httpd import (
            CampaignMetrics,
            ControlPlane,
            StatusBoard,
        )
        from repro.telemetry import metrics as metrics_registry

        registry = metrics_registry.enable()
        metrics_adapter = CampaignMetrics(registry)
        status_board = StatusBoard()
        status_board.begin_campaign(
            args.benchmark, args.seed, cells_total=len(args.vr),
            extra={"scale": args.scale, "runs_per_cell": args.runs,
                   "workers": args.workers})
        control_plane = ControlPlane(registry, status_board,
                                     trajectory_recorder,
                                     port=args.metrics_port)
        bound = control_plane.start()
        print(f"control plane: http://127.0.0.1:{bound} "
              f"(/metrics /status /trajectory)", file=sys.stderr)
        if args.port_file:
            _check_parent_dir(args.port_file, "--port-file")
            Path(args.port_file).write_text(f"{bound}\n",
                                            encoding="utf-8")
    terminal_monitor = None
    if args.monitor:
        from repro.observe import CampaignMonitor

        terminal_monitor = CampaignMonitor(total_cells=len(args.vr))
    monitor = None
    if (terminal_monitor is not None or control_plane is not None
            or trajectory_recorder is not None):
        from repro.observe import MonitorMux

        monitor = MonitorMux(
            terminal_monitor,
            metrics_adapter if control_plane is not None else None,
            status_board if control_plane is not None else None,
            trajectory_recorder,
        )
    points = _points_for(args.vr)
    workload = make_workload(args.benchmark, scale=args.scale,
                             seed=args.seed)
    fastforward = FastForwardConfig(enabled=args.fast_forward,
                                    interval=_parse_snapshot_interval(args))
    runner = CampaignRunner(workload, seed=args.seed,
                            fastforward=fastforward)
    try:
        golden = runner.golden()
        profile = golden.profile
        if args.model_file:
            model = store.load_any(args.model_file)
        else:
            model = characterize_wa(profile, points)
        adaptive_config = None
        if args.adaptive or args.importance:
            from repro.campaign.adaptive import AdaptiveConfig

            adaptive_config = AdaptiveConfig(ci_target=args.ci_target,
                                             min_runs=args.min_runs,
                                             importance=args.importance)
        if args.importance:
            from repro.campaign.adaptive import ImportanceModel

            model = ImportanceModel(model)
        if sink is not None and model.provenance is not None:
            # Framed record so `repro report` can show where the injected
            # model came from (benchmark, seed, samples, trace digest).
            sink.emit({"type": "provenance", "model": model.name,
                       "line": model.provenance.describe(),
                       **model.provenance.to_dict()})
        config = ExecutorConfig(
            workers=args.workers,
            wall_clock_timeout=args.wall_timeout,
            journal_path=args.journal,
            resume=args.resume,
            fsync=args.fsync,
        )
        with CampaignExecutor(runner, config=config,
                              monitor=monitor) as executor:
            journal = executor.journal
            results = [executor.run_cell(model, point, runs=args.runs,
                                         adaptive=adaptive_config)
                       for point in points]
    finally:
        if args.flight:
            from repro.observe import flight

            flight.disable()
        if sink is not None:
            telemetry.clear_trace_context()
            sink.close(telemetry.get_collector())
        if trajectory_recorder is not None:
            trajectory_recorder.close()
        if chaos_injector is not None:
            chaos.uninstall()
    print(outcome_table(results))
    print()
    print(executor_stats_table(results))
    if adaptive_config is not None:
        budget = args.runs * len(results)
        executed = sum(r.counts.total for r in results)
        print()
        print(f"adaptive: {executed}/{budget} runs "
              f"({max(0, budget - executed)} saved, target "
              f"±{adaptive_config.ci_target:g} at "
              f"{adaptive_config.confidence:.0%})")
        for result in results:
            stop = result.stop
            if stop is None:
                continue
            print(f"  {result.workload}/{result.model}/{result.point}: "
                  f"{stop.rule} at n={stop.n} "
                  f"AVM in [{stop.ci_lo:.3f}, {stop.ci_hi:.3f}]")
            if args.importance:
                print(f"    weighted AVM: HT {result.avm_ht:.3f}, "
                      f"self-normalized {result.avm_sn:.3f}")
    if journal is not None:
        js = journal.stats
        print()
        print(f"journal: {js['records']} record(s), {js['fsyncs']} "
              f"fsync(s) ({args.fsync} policy), {js['write_errors']} "
              f"write error(s), {js['crc_failures']} corrupt line(s) "
              f"quarantined on load")
    if golden.snapshots is not None:
        stats = golden.snapshots.stats()
        restores = sum(r.stats.ff_restores for r in results)
        exits = sum(r.stats.ff_early_exits for r in results)
        skipped = sum(r.stats.ff_ops_skipped for r in results)
        corrupt = sum(r.stats.ff_corrupt for r in results)
        cold = sum(r.stats.ff_cold_starts for r in results)
        print()
        print(f"fast-forward: {stats['snapshots']} snapshot(s) over "
              f"{stats['boundaries']} boundaries (interval "
              f"{stats['interval']}), {stats['stored_bytes']} bytes "
              f"stored ({stats['dedup_saved_bytes']} deduplicated); "
              f"{restores} restore(s), {exits} early exit(s), "
              f"{skipped} ops skipped")
        if corrupt or cold:
            print(f"fast-forward recovery: {corrupt} corrupt snapshot(s) "
                  f"quarantined, {cold} cold start(s) from the initial "
                  f"state (outcomes unaffected: recovery replays more, "
                  f"never differently)")
    if chaos_injector is not None:
        tallies = ", ".join(f"{name}={count}" for name, count
                            in sorted(chaos_injector.stats.items()))
        print()
        print(f"chaos: incarnation {chaos_injector.incarnation}, "
              f"faults {'on' if chaos_injector.faults_active else 'off'}"
              + (f", injected: {tallies}" if tallies else ""))
    elif args.fast_forward and workload.checkpointable is False:
        print()
        print(f"fast-forward: {workload.name} is not checkpointable; "
              f"runs used full replay")
    if args.telemetry:
        from repro.telemetry import summary_table

        print()
        print(summary_table(telemetry.snapshot()))
        telemetry.disable()
    if control_plane is not None:
        from repro.telemetry import metrics as metrics_registry

        if args.serve_grace > 0:
            # Keep the endpoints up so a supervisor (CI, a dashboard
            # poller) can scrape the finished campaign's final state.
            print(f"control plane: serving final state for "
                  f"{args.serve_grace:g}s more", file=sys.stderr)
            time.sleep(args.serve_grace)
        control_plane.close()
        metrics_registry.disable()
    return 0


def _cmd_serve(args) -> int:
    """Post-hoc control plane: serve a finished campaign's artifacts.

    Rebuilds the status board and metric families by replaying the
    journal's outcomes, loads the CI trajectory if one was recorded, and
    exposes the same ``/metrics`` / ``/status`` / ``/trajectory``
    endpoints as ``repro campaign --serve`` — without re-running
    anything.
    """
    from repro.observe.html_report import load_campaign_results
    from repro.observe.httpd import (
        ControlPlane,
        board_from_results,
        registry_from_results,
    )

    results = load_campaign_results(args.journal)
    if not results:
        raise SystemExit(
            f"error: no campaign results in journal {args.journal!r}"
        )
    board = board_from_results(results, benchmark=args.benchmark or "",
                               seed=args.seed)
    registry = registry_from_results(results)
    trajectory = None
    if args.trajectory:
        from repro.observe import TrajectoryRecorder, load_trajectory

        trajectory = TrajectoryRecorder()  # path-less: in-memory only
        trajectory.points.extend(load_trajectory(args.trajectory))
    plane = ControlPlane(registry, board, trajectory,
                         host=args.host, port=args.metrics_port)
    bound = plane.start()
    print(f"control plane: http://{args.host}:{bound} "
          f"(/metrics /status /trajectory)", file=sys.stderr)
    if args.port_file:
        _check_parent_dir(args.port_file, "--port-file")
        Path(args.port_file).write_text(f"{bound}\n", encoding="utf-8")
    deadline = (time.monotonic() + args.duration
                if args.duration is not None else None)
    try:
        while deadline is None or time.monotonic() < deadline:
            time.sleep(0.1)
    except KeyboardInterrupt:
        pass
    finally:
        plane.close()
    return 0


def _parse_fs_rates(specs):
    """``TARGET:KIND=RATE`` flags -> the FaultPlan fs_rates mapping."""
    from repro.chaos import FS_KINDS, FS_TARGETS

    rates = {}
    for spec in specs:
        try:
            target_kind, rate = spec.split("=", 1)
            target, kind = target_kind.split(":", 1)
            rates.setdefault(target, {})[kind] = float(rate)
        except ValueError:
            raise SystemExit(
                f"error: --fs-rate {spec!r}: expected TARGET:KIND=RATE "
                f"(targets: {', '.join(FS_TARGETS)}; kinds: "
                f"{', '.join(FS_KINDS)})"
            )
    return rates


def _cmd_chaos(args) -> int:
    from repro import chaos

    campaign_args = list(args.campaign_args)
    if campaign_args and campaign_args[0] == "--":
        campaign_args = campaign_args[1:]
    if "--journal" not in campaign_args:
        raise SystemExit(
            "error: repro chaos supervises a journaled campaign; pass "
            "--journal PATH among the campaign arguments"
        )
    try:
        plan = chaos.FaultPlan(
            seed=args.plan_seed,
            worker_kill_rate=args.worker_kill_rate,
            max_worker_kills=args.max_worker_kills,
            coordinator_kills=tuple(args.coordinator_kills),
            fs_rates=_parse_fs_rates(args.fs_rate),
        )
    except ValueError as exc:
        raise SystemExit(f"error: invalid fault plan: {exc}")
    argv = [sys.executable, "-m", "repro", "campaign"] + campaign_args
    result = chaos.supervise(argv, plan, max_restarts=args.max_restarts,
                             heal=not args.no_heal, stats_path=args.stats)
    print()
    print(f"chaos: {result.incarnations} incarnation(s), "
          f"{result.restarts} restart(s) after injected kills, "
          f"heal pass {'completed' if result.healed else 'skipped'}"
          f"{'' if result.ok else f', FAILED (exit {result.exit_code})'}")
    if args.stats and Path(args.stats).exists():
        print(f"chaos: per-process fault tallies in {args.stats}")
    return 0 if result.ok else 1


def _stitched_spans_text(events, run_key: str) -> str:
    """Render the cross-process span trail of one run, if recorded.

    Spans closed inside forked workers carry the run's trace context
    (campaign id, cell, run key, pid); sorted by wall-clock timestamp
    they read as one causal trace even though the work crossed a fork.
    """
    from repro.telemetry import spans_for_run

    spans = spans_for_run(events, run_key)
    if not spans:
        return ""
    lines = [f"spans ({run_key}):",
             f"  {'pid':>8}  {'duration ms':>12}  path"]
    for span in spans:
        attrs = span.get("attrs", {})
        pid = attrs.get("pid", "?")
        lines.append(f"  {pid!s:>8}  {span.get('duration_ms', 0.0):>12.3f}"
                     f"  {span.get('path', span.get('name', '?'))}")
    return "\n".join(lines)


def _cmd_trace(args) -> int:
    from repro.observe import flight

    records = flight.load_records(args.trace)
    selected = flight.filter_records(
        records, workload=args.workload, model=args.model,
        point=args.point, outcome=args.outcome, run_index=args.run,
    )
    if args.explain or args.run is not None:
        if not selected:
            print("(no flight records match)")
            return 1
        from repro.telemetry.sinks import read_trace

        events = read_trace(args.trace)
        for record in selected:
            print(flight.explain(record))
            stitched = _stitched_spans_text(events, record.stream)
            if stitched:
                print()
                print(stitched)
            print()
        return 0
    print(flight.records_table(selected))
    if args.summary:
        print()
        print(flight.summary_tables(selected))
        from repro.telemetry import span_summary_table
        from repro.telemetry.sinks import read_trace

        print()
        print(span_summary_table(read_trace(args.trace)))
    return 0


def _cmd_report(args) -> int:
    from repro.observe import flight
    from repro.observe.html_report import (
        load_campaign_results,
        write_report,
    )

    _check_parent_dir(args.html, "--html")
    results = load_campaign_results(args.journal) if args.journal else []
    records = flight.load_records(args.trace) if args.trace else []
    snapshot = None
    provenance = []
    if args.trace:
        from repro.telemetry.sinks import read_trace

        events = read_trace(args.trace)
        for event in reversed(events):
            if event.get("type") == "snapshot":
                snapshot = event
                break
        provenance = [
            f"{event.get('model', '?')}: {event['line']}"
            for event in events
            if event.get("type") == "provenance" and event.get("line")
        ]
    trajectory_points = []
    if args.trajectory:
        from repro.observe import load_trajectory

        trajectory_points = load_trajectory(args.trajectory)
    out = write_report(args.html, results, records, snapshot,
                       title=args.title, provenance_lines=provenance,
                       trajectory_points=trajectory_points)
    print(f"wrote {out}")
    return 0


def _cmd_experiment(args) -> int:
    spec = get_experiment(args.id)
    if args.list_options:
        print(spec.describe_options())
        return 0
    options = spec.parse_cli(args.options)
    result = spec.run(**options)
    print(spec.render(result))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Circuit- and workload-aware timing-error assessment",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show benchmarks and experiments")

    p = sub.add_parser("characterize",
                       help="build and save error-model artifacts")
    p.add_argument("benchmark", choices=sorted(WORKLOADS))
    p.add_argument("--model", choices=["da", "ia", "wa", "all"],
                   default="wa")
    p.add_argument("--scale", default="small",
                   choices=["tiny", "small", "paper"])
    p.add_argument("--vr", type=int, nargs="+", default=[15, 20],
                   help="voltage reductions in percent")
    p.add_argument("--samples", type=int, default=100_000)
    p.add_argument("--seed", type=int, default=2021)
    p.add_argument("--output", default="artifacts")
    p.add_argument("--workers", type=int, default=None,
                   help="characterization worker processes "
                        "(unset = legacy serial path; 0 = pipeline, "
                        "in-process)")
    p.add_argument("--chunk", type=int, default=None,
                   help="operand chunk size streamed through DTA "
                        "(bounds peak memory; result is bit-identical "
                        "for any value)")
    p.add_argument("--cache-dir", default=None,
                   help="content-addressed model cache directory; "
                        "repeat runs with identical inputs are near-free")
    p.add_argument("--no-cache", action="store_true",
                   help="compute fresh even when --cache-dir is set "
                        "(entries are still not rewritten)")
    p.add_argument("--timing-backend", choices=list(TIMING_BACKENDS),
                   default=DEFAULT_TIMING_BACKEND,
                   help="gate-level DTA engine: 'event' (reference "
                        "event-driven simulator) or 'bitparallel' "
                        "(levelized 64-lane batch engine, bit-identical "
                        "verdicts); part of every model cache key")

    p = sub.add_parser("campaign", help="run an injection campaign")
    p.add_argument("benchmark", choices=sorted(WORKLOADS))
    p.add_argument("--model-file", help="saved artifact (default: fresh WA)")
    p.add_argument("--runs", type=int, default=1068)
    p.add_argument("--adaptive", action="store_true",
                   help="stop each cell when the anytime-valid CI "
                        "reaches --ci-target (--runs is the ceiling)")
    p.add_argument("--ci-target", type=float, default=0.03,
                   help="adaptive stop half-width (the paper's ±margin)")
    p.add_argument("--min-runs", type=int, default=100,
                   help="adaptive floor: never stop below this many runs")
    p.add_argument("--importance", action="store_true",
                   help="importance-sample WA victim placement "
                        "(Horvitz–Thompson reweighted AVM; implies "
                        "--adaptive)")
    p.add_argument("--scale", default="small",
                   choices=["tiny", "small", "paper"])
    p.add_argument("--vr", type=int, nargs="+", default=[15, 20])
    p.add_argument("--seed", type=int, default=2021)
    p.add_argument("--workers", type=int, default=0,
                   help="isolated worker processes (0 = serial in-process)")
    p.add_argument("--wall-timeout", type=float, default=None,
                   help="per-run wall-clock watchdog in seconds")
    p.add_argument("--journal", default=None,
                   help="append-only JSONL run journal (checkpoint file)")
    p.add_argument("--resume", action="store_true",
                   help="resume from an existing journal instead of "
                        "starting clean")
    p.add_argument("--fsync", choices=["group", "always", "close"],
                   default="group",
                   help="journal durability policy: 'group' (default) "
                        "fsyncs every 64 records / 50 ms, 'always' per "
                        "record, 'close' only at shutdown")
    p.add_argument("--telemetry", action="store_true",
                   help="collect counters/spans and print a summary table")
    p.add_argument("--trace", default=None,
                   help="write a JSONL telemetry trace to this path "
                        "(implies --telemetry)")
    p.add_argument("--flight", action="store_true",
                   help="record one flight record per run into the trace "
                        "(requires --trace)")
    p.add_argument("--monitor", action="store_true",
                   help="live terminal status: progress, outcome tallies, "
                        "AVM with 95%% CI, worker health, ETA")
    p.add_argument("--serve", action="store_true",
                   help="expose a live HTTP control plane (/metrics in "
                        "Prometheus text format, /status JSON, "
                        "/trajectory NDJSON) for the campaign's duration")
    p.add_argument("--metrics-port", type=int, default=0,
                   help="control-plane TCP port (default 0 = ephemeral; "
                        "the bound port is printed to stderr and shown "
                        "in /status)")
    p.add_argument("--port-file", default=None,
                   help="write the bound control-plane port to this file "
                        "(for scripts scraping an ephemeral port)")
    p.add_argument("--serve-grace", type=float, default=0.0,
                   help="keep the control plane up this many seconds "
                        "after the campaign finishes (lets CI scrape "
                        "final /metrics and /status)")
    p.add_argument("--trajectory", default=None,
                   help="append per-run CI-trajectory points (cell, "
                        "runs_done, AVM, Wilson bounds, wall_s) to this "
                        "JSONL file")
    ff = p.add_mutually_exclusive_group()
    ff.add_argument("--fast-forward", dest="fast_forward",
                    action="store_true", default=True,
                    help="restore golden-run snapshots and replay only "
                         "the post-injection suffix (default; bit-"
                         "identical to full replay)")
    ff.add_argument("--no-snapshots", dest="fast_forward",
                    action="store_false",
                    help="full replay for every run — the reference "
                         "semantics; required when the workload is "
                         "modified mid-campaign or when auditing the "
                         "fast-forward engine itself")
    p.add_argument("--snapshot-interval", default=str(DEFAULT_INTERVAL),
                   help="snapshot spacing in step boundaries, or 'inf' "
                        "for the initial snapshot only "
                        f"(default {DEFAULT_INTERVAL})")
    p.add_argument("--shards", type=int, default=0,
                   help="partition the campaign's cells into this many "
                        "shards over a shared artifact store (requires "
                        "--store); the merged journal is bit-identical "
                        "to an unsharded run's")
    p.add_argument("--store", default=None,
                   help="artifact store directory shared by all shard "
                        "workers (staged models, work queue, per-cell "
                        "journals, archived merge)")
    p.add_argument("--campaign-id", default=None,
                   help="name of the sharded campaign in the store "
                        "(default '<benchmark>-s<seed>'); re-running "
                        "with the same id resumes it")
    p.add_argument("--shard-procs", action="store_true",
                   help="one OS-process worker per shard (crash-"
                        "isolated, self-healing via lease stealing) "
                        "instead of draining shards in-process")

    p = sub.add_parser(
        "shard-worker",
        help="drain work items of a sharded campaign",
        description="One worker of a `campaign --shards N` fleet: "
                    "claims leased work items from the store's durable "
                    "queue, runs each cell through the executor with "
                    "its journal resumed, and steals stale leases from "
                    "dead workers unless --no-steal.")
    p.add_argument("--store", required=True,
                   help="the campaign's artifact store directory")
    p.add_argument("--campaign", required=True,
                   help="campaign id inside the store")
    p.add_argument("--shard", type=int, default=None,
                   help="preferred shard (its items are claimed first)")
    p.add_argument("--worker-id", default=None,
                   help="stable worker name for leases/status "
                        "(default 'worker-<pid>')")
    p.add_argument("--no-steal", action="store_true",
                   help="never claim items outside --shard")
    p.add_argument("--no-wait", action="store_true",
                   help="exit when nothing is claimable instead of "
                        "waiting for stragglers to finish or die")

    p = sub.add_parser(
        "chaos",
        help="run a campaign under a deterministic fault plan",
        description="Supervise `repro campaign` under seeded harness "
                    "faults: worker SIGKILLs, coordinator kills at "
                    "journal boundaries, and injected EIO/ENOSPC/torn/"
                    "bit-rot filesystem faults.  Killed campaigns are "
                    "restarted with --resume; a final fault-free heal "
                    "pass leaves the journal canonically identical to a "
                    "fault-free run's.  Arguments after `--` are "
                    "forwarded to `repro campaign` verbatim and must "
                    "include --journal.")
    p.add_argument("--plan-seed", type=int, default=0,
                   help="fault-plan seed (same seed = same faults)")
    p.add_argument("--worker-kill-rate", type=float, default=0.0,
                   help="probability a run's worker is SIGKILLed "
                        "pre-guest (retried as a harness failure)")
    p.add_argument("--max-worker-kills", type=int, default=1,
                   help="max consecutive kill attempts per run; keep "
                        "<= the executor's max_retries (2) or the run "
                        "is abandoned")
    p.add_argument("--coordinator-kills", type=int, nargs="*", default=[],
                   help="journal-record counts after which incarnation "
                        "0, 1, ... of the coordinator is SIGKILLed")
    p.add_argument("--fs-rate", action="append", default=[],
                   metavar="TARGET:KIND=RATE",
                   help="filesystem fault rate, repeatable (targets: "
                        "journal, cache, store, page; kinds: eio, "
                        "enospc, torn, bitrot)")
    p.add_argument("--max-restarts", type=int, default=8,
                   help="give up after this many restarts")
    p.add_argument("--stats", default=None,
                   help="append per-process fault tallies to this "
                        "JSONL file")
    p.add_argument("--no-heal", action="store_true",
                   help="skip the final fault-free --resume pass")
    p.add_argument("campaign_args", nargs=argparse.REMAINDER,
                   help="arguments forwarded to `repro campaign`")

    p = sub.add_parser("trace", help="query a recorded telemetry trace")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    q = trace_sub.add_parser(
        "query", help="filter flight records and drill into runs",
        description="Filter the flight records of a JSONL trace.  With "
                    "--run or --explain, print the full per-run causal "
                    "chain (victims, placement, masking, outcome).")
    q.add_argument("trace", help="JSONL trace written by campaign --trace")
    q.add_argument("--workload", help="filter by benchmark name")
    q.add_argument("--model", help="filter by error model (DA/IA/WA)")
    q.add_argument("--point", help="filter by operating point (e.g. VR20)")
    q.add_argument("--outcome",
                   help="filter by outcome (Masked/SDC/Crash/Timeout)")
    q.add_argument("--run", type=int, default=None,
                   help="drill into one run index (prints the full chain)")
    q.add_argument("--explain", action="store_true",
                   help="print the full causal chain of every match")
    q.add_argument("--summary", action="store_true",
                   help="append derived tables: outcome tallies, masking "
                        "stages, per-bit flip histograms")

    p = sub.add_parser(
        "report", help="render an HTML campaign report",
        description="Render a self-contained HTML page (inline CSS/SVG, "
                    "no external assets) from a campaign journal and/or "
                    "telemetry trace.")
    p.add_argument("--journal", default=None,
                   help="campaign journal to reconstruct results from")
    p.add_argument("--trace", default=None,
                   help="telemetry trace with flight records")
    p.add_argument("--html", required=True,
                   help="output path of the report page")
    p.add_argument("--title", default="Timing-error campaign report")
    p.add_argument("--trajectory", default=None,
                   help="CI-trajectory JSONL (campaign --trajectory) to "
                        "render as a convergence section")

    p = sub.add_parser(
        "serve",
        help="serve a finished campaign's status and metrics over HTTP",
        description="Rebuild the /metrics, /status and /trajectory "
                    "endpoints from a finished campaign's journal (and "
                    "optional trajectory stream) without re-running "
                    "anything.  Runs until Ctrl-C or --duration.")
    p.add_argument("--journal", required=True,
                   help="campaign journal to reconstruct state from")
    p.add_argument("--trajectory", default=None,
                   help="CI-trajectory JSONL recorded by campaign "
                        "--trajectory")
    p.add_argument("--benchmark", default=None,
                   help="benchmark name to show in /status (cosmetic)")
    p.add_argument("--seed", type=int, default=None,
                   help="campaign seed to show in /status (cosmetic)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--metrics-port", type=int, default=0,
                   help="TCP port (default 0 = ephemeral, printed to "
                        "stderr)")
    p.add_argument("--port-file", default=None,
                   help="write the bound port to this file")
    p.add_argument("--duration", type=float, default=None,
                   help="serve for this many seconds then exit "
                        "(default: until interrupted)")

    p = sub.add_parser(
        "experiment", help="regenerate a paper artifact",
        description="Run one registered experiment.  Options after the id "
                    "are experiment-specific; discover them with "
                    "--list-options.")
    p.add_argument("id", choices=sorted(REGISTRY))
    p.add_argument("--list-options", action="store_true",
                   help="show the experiment's options and exit")
    p.add_argument("options", nargs=argparse.REMAINDER,
                   help="experiment options as --name value pairs")

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "characterize": _cmd_characterize,
        "campaign": _cmd_campaign,
        "shard-worker": _cmd_shard_worker,
        "chaos": _cmd_chaos,
        "trace": _cmd_trace,
        "report": _cmd_report,
        "serve": _cmd_serve,
        "experiment": _cmd_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
