#!/usr/bin/env python
"""Benchmark the DTA -> model -> campaign pipeline; emit BENCH_campaign.json.

Times the paper's two phases with telemetry enabled:

1. *micro*: gate-level DTA on a ripple adder, exercising the eventsim
   layer in isolation,
2. *golden*: workload construction + golden runs per benchmark,
3. *characterize*: serial reference model development (WA per benchmark
   plus the shared IA and DA models — the FPU DTA layer),
4. *characterize_parallel*: the same model set through the parallel,
   content-addressed characterization pipeline (cold cache),
5. *characterize_warm*: the pipeline again on the warm cache (every
   model is a cache hit; measures the near-zero-cost rerun),
5b. *characterize_gate* / *characterize_bitparallel*: gate-level
   characterisation of one shared random vector stream through the
   event-driven reference and the levelized bit-parallel engine —
   the wall ratio is the ``backend`` block's speedup and the verdicts
   must agree exactly,
6. *campaign*: a small injection campaign per benchmark through the
   fault-tolerant executor, full replay (snapshots off),
7. *campaign_journal*: the identical campaign with a CRC-checksummed
   run journal attached under the configured ``--fsync`` policy —
   measuring the durability tax of crash-consistent journaling,
8. *campaign_fastforward*: the identical campaign with the checkpointed
   fast-forward engine on — same seeds, same cells, bit-identical
   outcomes — measuring the snapshot restore + suffix-replay speedup,
9. *campaign_observed*: the identical campaign with the full live
   observability stack attached — metrics registry + status board +
   CI-trajectory recorder behind a MonitorMux, the HTTP control plane
   serving /metrics, /status and /trajectory on an ephemeral port, and
   a campaign trace context stamping spans — measuring the cost of
   watching a campaign (gated within a few percent in bench_check),
10. *campaign_adaptive*: the identical cells under the sequential
    CI-target stopping rule — each cell halts at the first predeclared
    look whose anytime-valid interval is tight enough, so the phase
    measures the runs-saved fraction and proves the early verdicts
    agree with fixed-N (every fixed AVM inside the adaptive stop
    interval; gated in bench_check).

The campaign phases run at their own ``--campaign-scale`` (default
``small``): guest execution has to dominate the per-run planning
overhead (which is identical on both sides) for the fast-forward ratio
to measure the engine rather than the scheduler, while the
characterization phases stay at ``--scale`` where the DTA layer
dominates.

The emitted JSON carries per-phase wall times, per-layer
(eventsim/dta/executor) timings pulled from the telemetry collector, a
``pipeline`` block (speedup, warm fraction, cache hit/miss counts), a
``journal`` block (fsync policy, overhead fraction vs the unjournaled
campaign, record/fsync counts) and a ``fastforward`` block (campaign
speedup, snapshot-store stats, restore / early-exit / skipped-op
counters), so `BENCH_campaign.json` accumulates
a comparable perf trajectory across commits.  `--validate FILE` checks
an existing file against the schema (used by the CI bench smoke job)
and exits non-zero on violations.
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import telemetry                              # noqa: E402
from repro.campaign.adaptive import AdaptiveConfig       # noqa: E402
from repro.campaign.executor import (                    # noqa: E402
    CampaignExecutor,
    ExecutorConfig,
)
from repro.campaign.fastforward import FastForwardConfig  # noqa: E402
from repro.campaign.runner import CampaignRunner         # noqa: E402
from repro.circuit.builder import build_adder            # noqa: E402
from repro.circuit.dta import DynamicTimingAnalysis      # noqa: E402
from repro.circuit.liberty import VR15, VR20             # noqa: E402
from repro.circuit.sta import StaticTimingAnalysis       # noqa: E402
from repro.errors import (                               # noqa: E402
    CharacterizationPipeline,
    PipelineConfig,
    characterize_da,
    characterize_gate,
    characterize_ia,
    characterize_wa,
    random_vector_words,
)
from repro.fpu.unit import DEFAULT_DTA_BATCH             # noqa: E402
from repro.utils.rng import RngStream                    # noqa: E402
from repro.workloads import make_workload                # noqa: E402

#: v2 splits golden runs out of the characterize phase and adds the
#: characterize_parallel / characterize_warm phases plus the pipeline
#: speedup block.  v3 adds the campaign_fastforward phase (the same
#: campaign through the snapshot/fast-forward engine) and the
#: fastforward block.  v4 adds the campaign_journal phase (the same
#: campaign with the CRC-checksummed run journal attached) and the
#: journal overhead block.  v5 adds the characterize_gate /
#: characterize_bitparallel phases (gate-level characterisation of the
#: same vector stream through the event-driven reference and the
#: bit-parallel engine) and the backend block (speedup + verdict
#: equality).  v6 adds the campaign_observed phase (the same campaign
#: with the metrics registry, status board, trajectory recorder and
#: HTTP control plane attached) and the observability block (overhead
#: fraction vs the unobserved campaign, scrape liveness, trajectory
#: point count).  v7 adds the campaign_adaptive phase (the same cells
#: under the sequential CI-target stopping rule) and the adaptive block
#: (runs saved at equal verdicts: every fixed-N AVM must land inside
#: the adaptive stop interval).
SCHEMA_VERSION = 7

PHASES = ("golden", "characterize", "characterize_parallel",
          "characterize_warm", "characterize_gate",
          "characterize_bitparallel", "campaign", "campaign_journal",
          "campaign_fastforward", "campaign_observed",
          "campaign_adaptive")

DEFAULT_BENCHMARKS = ("kmeans", "hotspot")


def _stat(snapshot, name):
    """One stats entry of a telemetry snapshot, zeroed when absent."""
    stat = snapshot["stats"].get(name)
    if stat is None:
        return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0}
    return stat


def bench_micro_dta(vectors: int, seed: int) -> dict:
    """Gate-level DTA on a 16-bit adder: the eventsim-layer microbench.

    The vector stream is packed into per-net transition words once, up
    front, and analysed through the batch API — the timed region holds
    only engine work, no per-vector ``Dict[str, int]`` construction.
    """
    netlist = build_adder(16)
    clock = StaticTimingAnalysis(netlist).critical_delay()
    dta = DynamicTimingAnalysis(netlist, clock_ps=clock, delay_factor=1.3)
    rng = RngStream(seed, "bench-micro")
    words = random_vector_words(netlist, vectors + 1, rng)
    window = (1 << vectors) - 1
    prev_words = [w & window for w in words]
    cur_words = [w >> 1 for w in words]
    start = time.perf_counter()
    outcome = dta.analyze_batch(prev_words, cur_words, count=vectors)
    wall = time.perf_counter() - start
    return {"wall_s": wall, "transitions": len(outcome),
            "faulty": outcome.error_count, "clock_ps": clock}


def bench_gate_backends(samples: int, seed: int, phases: dict) -> dict:
    """Gate-level characterisation, event vs bit-parallel, same stream.

    Both engines consume the byte-identical packed vector stream (same
    netlist, seed, clock and delay factor), so the wall-time ratio is a
    pure engine speedup and the verdicts must agree exactly — the
    equality bit lands in the emitted block and is gated in CI via
    ``bench.py --validate``.
    """
    netlist = build_adder(16)
    clock = StaticTimingAnalysis(netlist).critical_delay()
    results = {}
    for backend in ("event", "bitparallel"):
        start = time.perf_counter()
        results[backend] = characterize_gate(
            netlist, clock_ps=clock, delay_factor=1.3,
            samples=samples, seed=seed, backend=backend)
        wall = time.perf_counter() - start
        phase = ("characterize_gate" if backend == "event"
                 else "characterize_bitparallel")
        phases[phase]["wall_s"] = wall
        phases[phase]["per_benchmark"]["adder16"] = wall
    event, bitparallel = results["event"], results["bitparallel"]
    event_wall = phases["characterize_gate"]["wall_s"]
    bp_wall = phases["characterize_bitparallel"]["wall_s"]
    return {
        "netlist": netlist.name,
        "samples": samples,
        "clock_ps": clock,
        "delay_factor": 1.3,
        "event_wall_s": event_wall,
        "bitparallel_wall_s": bp_wall,
        "speedup": (event_wall / bp_wall) if bp_wall > 0 else None,
        "verdicts_equal": bool(
            event.faulty == bitparallel.faulty
            and (event.bit_counts == bitparallel.bit_counts).all()
        ),
        "faulty": int(event.faulty),
    }


def _characterize_models(args, profiles, points, phase: dict,
                         pipeline=None) -> dict:
    """One full model-development pass: WA per benchmark + IA + DA.

    ``pipeline=None`` is the serial reference; otherwise the parallel,
    cache-aware engine runs the identical model set.  Per-model wall
    times land in ``phase["per_benchmark"]`` (IA/DA under the ``ia`` /
    ``da`` pseudo-entries).
    """
    models = {}
    for name, profile in profiles.items():
        start = time.perf_counter()
        models[name] = characterize_wa(profile, points,
                                       max_samples=args.samples,
                                       pipeline=pipeline)
        phase["per_benchmark"][name] = time.perf_counter() - start
    start = time.perf_counter()
    characterize_ia(points, samples_per_op=args.ia_samples,
                    seed=args.seed, pipeline=pipeline)
    phase["per_benchmark"]["ia"] = time.perf_counter() - start
    start = time.perf_counter()
    characterize_da(list(profiles.values()), points,
                    sample_per_point=args.ia_samples, seed=args.seed,
                    pipeline=pipeline)
    phase["per_benchmark"]["da"] = time.perf_counter() - start
    phase["wall_s"] = sum(phase["per_benchmark"].values())
    return models


def bench_pipeline(args) -> dict:
    telemetry.enable()
    points = [VR15, VR20]
    phases = {name: {"wall_s": 0.0, "per_benchmark": {}}
              for name in PHASES}

    micro = bench_micro_dta(args.micro_vectors, args.seed)
    backend_block = bench_gate_backends(args.gate_samples, args.seed,
                                        phases)

    # Full-replay reference runners: the golden and campaign phases keep
    # their historical (snapshots-off) meaning.
    runners = {}
    profiles = {}
    for name in args.benchmarks:
        start = time.perf_counter()
        workload = make_workload(name, scale=args.scale, seed=args.seed)
        runner = CampaignRunner(
            workload, seed=args.seed,
            fastforward=FastForwardConfig(enabled=False),
        )
        profiles[name] = runner.golden().profile
        runners[name] = runner
        phases["golden"]["per_benchmark"][name] = (
            time.perf_counter() - start
        )
    phases["golden"]["wall_s"] = sum(
        phases["golden"]["per_benchmark"].values()
    )

    models = _characterize_models(args, profiles, points,
                                  phases["characterize"])

    with tempfile.TemporaryDirectory(prefix="bench-mcache-") as tmp:
        cold = CharacterizationPipeline(PipelineConfig(
            workers=args.pipeline_workers, chunk=DEFAULT_DTA_BATCH,
            cache_dir=Path(tmp), use_cache=True))
        _characterize_models(args, profiles, points,
                             phases["characterize_parallel"], pipeline=cold)
        warm = CharacterizationPipeline(PipelineConfig(
            workers=args.pipeline_workers, chunk=DEFAULT_DTA_BATCH,
            cache_dir=Path(tmp), use_cache=True))
        _characterize_models(args, profiles, points,
                             phases["characterize_warm"], pipeline=warm)
        cache_stats = {"cold": cold.cache.stats(),
                       "warm": warm.cache.stats()}

    # Campaign phases run at their own scale so guest execution (the
    # part fast-forward accelerates) dominates the per-run planning
    # overhead shared by both sides.  Golden builds happen outside the
    # timed region on both sides.  The fixed-N AVMs feed the adaptive
    # phase's verdict-equality check.
    fixed_avms = {}
    for name in args.benchmarks:
        workload = make_workload(name, scale=args.campaign_scale,
                                 seed=args.seed)
        runner = CampaignRunner(
            workload, seed=args.seed,
            fastforward=FastForwardConfig(enabled=False),
        )
        runner.golden()
        start = time.perf_counter()
        config = ExecutorConfig(workers=args.workers)
        with CampaignExecutor(runner, config=config) as executor:
            for point in points:
                result = executor.run_cell(models[name], point,
                                           runs=args.runs)
                fixed_avms[f"{name}/{point.name}"] = result.avm
        phases["campaign"]["per_benchmark"][name] = (
            time.perf_counter() - start
        )
    phases["campaign"]["wall_s"] = sum(
        phases["campaign"]["per_benchmark"].values()
    )

    # The identical campaign with the run journal attached: measures the
    # durability tax of crash-consistent journaling under the configured
    # fsync policy (group commit by default).  Same seeds, same cells —
    # the wall-time ratio to the unjournaled campaign phase is a pure
    # journaling overhead, gated candidate-only in bench_check.
    journal_stats = {"records": 0, "fsyncs": 0, "write_errors": 0,
                     "crc_failures": 0}
    with tempfile.TemporaryDirectory(prefix="bench-journal-") as tmp:
        for name in args.benchmarks:
            workload = make_workload(name, scale=args.campaign_scale,
                                     seed=args.seed)
            runner = CampaignRunner(
                workload, seed=args.seed,
                fastforward=FastForwardConfig(enabled=False),
            )
            runner.golden()
            start = time.perf_counter()
            config = ExecutorConfig(
                workers=args.workers, fsync=args.fsync,
                journal_path=str(Path(tmp) / f"{name}.jsonl"))
            with CampaignExecutor(runner, config=config) as executor:
                for point in points:
                    executor.run_cell(models[name], point, runs=args.runs)
                for key, value in executor.journal.stats.items():
                    journal_stats[key] = journal_stats.get(key, 0) + value
            phases["campaign_journal"]["per_benchmark"][name] = (
                time.perf_counter() - start
            )
    phases["campaign_journal"]["wall_s"] = sum(
        phases["campaign_journal"]["per_benchmark"].values()
    )

    # The identical campaign, fast-forwarded.  The snapshot-building
    # golden run is timed separately (it is a once-per-campaign cost,
    # symmetric with the reference runners' golden phase), so the phase
    # itself measures restore + suffix replay per run.
    ff_build_s = 0.0
    ff_stores = []
    ff_counters = {"restores": 0, "early_exits": 0,
                   "ops_skipped": 0, "ops_replayed": 0}
    for name in args.benchmarks:
        workload = make_workload(name, scale=args.campaign_scale,
                                 seed=args.seed)
        runner = CampaignRunner(
            workload, seed=args.seed,
            fastforward=FastForwardConfig(interval=args.snapshot_interval),
        )
        start = time.perf_counter()
        golden = runner.golden()
        ff_build_s += time.perf_counter() - start
        if golden.snapshots is not None:
            ff_stores.append(golden.snapshots.stats())
        start = time.perf_counter()
        config = ExecutorConfig(workers=args.workers)
        with CampaignExecutor(runner, config=config) as executor:
            for point in points:
                result = executor.run_cell(models[name], point,
                                           runs=args.runs)
                stats = result.stats
                ff_counters["restores"] += stats.ff_restores
                ff_counters["early_exits"] += stats.ff_early_exits
                ff_counters["ops_skipped"] += stats.ff_ops_skipped
                ff_counters["ops_replayed"] += stats.ff_ops_replayed
        phases["campaign_fastforward"]["per_benchmark"][name] = (
            time.perf_counter() - start
        )
    phases["campaign_fastforward"]["wall_s"] = sum(
        phases["campaign_fastforward"]["per_benchmark"].values()
    )

    # The identical (full-replay) campaign with the live observability
    # stack attached: metrics registry + status board + CI-trajectory
    # recorder multiplexed into the executor's monitor slot, the HTTP
    # control plane serving /metrics, /status and /trajectory on an
    # ephemeral port, and a campaign trace context stamping spans.
    # Same seeds, same cells — the wall ratio to the plain campaign
    # phase is the pure cost of watching, gated in bench_check.
    from urllib.request import urlopen

    from repro.observe import MonitorMux, TrajectoryRecorder
    from repro.observe.httpd import (
        CampaignMetrics,
        ControlPlane,
        StatusBoard,
    )
    from repro.telemetry.metrics import MetricsRegistry

    registry = MetricsRegistry()
    board = StatusBoard()
    board.begin_campaign("bench", args.seed,
                         cells_total=len(args.benchmarks) * len(points))
    trajectory = TrajectoryRecorder()
    mux = MonitorMux(CampaignMetrics(registry), board, trajectory)
    scrape_ok = False
    with ControlPlane(registry, board, trajectory, port=0) as plane:
        telemetry.set_trace_context(
            telemetry.TraceContext(campaign_id=f"bench-s{args.seed}"))
        try:
            for name in args.benchmarks:
                workload = make_workload(name, scale=args.campaign_scale,
                                         seed=args.seed)
                runner = CampaignRunner(
                    workload, seed=args.seed,
                    fastforward=FastForwardConfig(enabled=False),
                )
                runner.golden()
                start = time.perf_counter()
                config = ExecutorConfig(workers=args.workers)
                with CampaignExecutor(runner, config=config,
                                      monitor=mux) as executor:
                    for point in points:
                        executor.run_cell(models[name], point,
                                          runs=args.runs)
                phases["campaign_observed"]["per_benchmark"][name] = (
                    time.perf_counter() - start
                )
        finally:
            telemetry.clear_trace_context()
        try:
            with urlopen(f"http://127.0.0.1:{plane.port}/metrics",
                         timeout=5) as resp:
                scrape_ok = b"repro_campaign_runs_total" in resp.read()
        except OSError:
            scrape_ok = False
    phases["campaign_observed"]["wall_s"] = sum(
        phases["campaign_observed"]["per_benchmark"].values()
    )

    # The identical cells under the sequential CI-target stopping rule:
    # same seeds, same RNG substreams, so every adaptive cell is an
    # exact prefix of the fixed-N campaign above.  The block records the
    # runs saved and checks the verdicts agree — each fixed-N AVM must
    # land inside the adaptive stop interval (gated in bench_check).
    adaptive_config = AdaptiveConfig(ci_target=args.adaptive_ci_target,
                                     min_runs=args.adaptive_min_runs)
    adaptive_cells = []
    for name in args.benchmarks:
        workload = make_workload(name, scale=args.campaign_scale,
                                 seed=args.seed)
        runner = CampaignRunner(
            workload, seed=args.seed,
            fastforward=FastForwardConfig(enabled=False),
        )
        runner.golden()
        start = time.perf_counter()
        config = ExecutorConfig(workers=args.workers)
        with CampaignExecutor(runner, config=config) as executor:
            for point in points:
                result = executor.run_cell(models[name], point,
                                           runs=args.runs,
                                           adaptive=adaptive_config)
                stop = result.stats.stop
                cell = f"{name}/{point.name}"
                fixed = fixed_avms[cell]
                entry = {
                    "cell": cell,
                    "rule": stop.rule if stop else "budget",
                    "n": int(stop.n) if stop else args.runs,
                    "saved": int(stop.runs_saved) if stop else 0,
                    "avm": result.avm,
                    "ci_lo": stop.ci_lo if stop else 0.0,
                    "ci_hi": stop.ci_hi if stop else 1.0,
                    "fixed_avm": fixed,
                }
                entry["verdict_equal"] = bool(
                    entry["ci_lo"] <= fixed <= entry["ci_hi"])
                adaptive_cells.append(entry)
        phases["campaign_adaptive"]["per_benchmark"][name] = (
            time.perf_counter() - start
        )
    phases["campaign_adaptive"]["wall_s"] = sum(
        phases["campaign_adaptive"]["per_benchmark"].values()
    )
    adaptive_budget = args.runs * len(adaptive_cells)
    adaptive_executed = sum(c["n"] for c in adaptive_cells)
    adaptive_block = {
        "ci_target": args.adaptive_ci_target,
        "min_runs": args.adaptive_min_runs,
        "budget_runs": adaptive_budget,
        "executed_runs": adaptive_executed,
        "savings_fraction": ((adaptive_budget - adaptive_executed)
                             / adaptive_budget
                             if adaptive_budget > 0 else None),
        "verdicts_equal": all(c["verdict_equal"] for c in adaptive_cells),
        "cells": adaptive_cells,
    }

    snapshot = telemetry.snapshot()
    telemetry.disable()

    serial = phases["characterize"]["wall_s"]
    parallel = phases["characterize_parallel"]["wall_s"]
    warm_wall = phases["characterize_warm"]["wall_s"]
    pipeline_block = {
        "workers": args.pipeline_workers,
        "chunk": DEFAULT_DTA_BATCH,
        "speedup": (serial / parallel) if parallel > 0 else None,
        "warm_fraction": (warm_wall / serial) if serial > 0 else None,
        "cache": {
            "hit": cache_stats["cold"]["hit"] + cache_stats["warm"]["hit"],
            "miss": (cache_stats["cold"]["miss"]
                     + cache_stats["warm"]["miss"]),
            "invalid": (cache_stats["cold"]["invalid"]
                        + cache_stats["warm"]["invalid"]),
            "cold": cache_stats["cold"],
            "warm": cache_stats["warm"],
        },
    }

    campaign_wall = phases["campaign"]["wall_s"]
    journal_wall = phases["campaign_journal"]["wall_s"]
    journal_block = {
        "fsync": args.fsync,
        "overhead": ((journal_wall - campaign_wall) / campaign_wall
                     if campaign_wall > 0 else None),
        **journal_stats,
    }

    observed_wall = phases["campaign_observed"]["wall_s"]
    observability_block = {
        "overhead": ((observed_wall - campaign_wall) / campaign_wall
                     if campaign_wall > 0 else None),
        "scrape_ok": scrape_ok,
        "trajectory_points": len(trajectory.points),
        "runs_observed": int(board.snapshot()["runs_done"]),
    }

    ff_wall = phases["campaign_fastforward"]["wall_s"]
    fastforward_block = {
        "interval": (args.snapshot_interval
                     if args.snapshot_interval is not None else "inf"),
        "speedup": (campaign_wall / ff_wall) if ff_wall > 0 else None,
        "golden_build_s": ff_build_s,
        **ff_counters,
        "stores": ff_stores,
    }

    counters = snapshot["counters"]
    layers = {
        "eventsim": {
            "wall_s": micro["wall_s"],
            "simulations": int(counters.get("eventsim.simulations", 0)),
            "events": int(counters.get("eventsim.events", 0)),
        },
        "dta": {
            "wall_s": _stat(snapshot, "fpu.dta")["total"],
            "batches": int(counters.get("fpu.dta.batches", 0)),
            "vectors": int(counters.get("fpu.dta.vectors", 0)),
        },
        "bitsim": {
            "wall_s": phases["characterize_bitparallel"]["wall_s"],
            "batches": int(counters.get("bitsim.batches", 0)),
            "lanes": int(counters.get("bitsim.lanes", 0)),
            "gate_evals": int(counters.get("bitsim.gate_evals", 0)),
        },
        "executor": {
            "wall_s": _stat(snapshot, "campaign.cell")["total"],
            "cells": int(counters.get("campaign.cells", 0)),
            "runs": int(counters.get("campaign.runs.executed", 0)),
            "run_ms": _stat(snapshot, "campaign.run_ms"),
        },
    }

    return {
        "bench": "repro-pipeline",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "scale": args.scale,
            "campaign_scale": args.campaign_scale,
            "seed": args.seed,
            "runs": args.runs,
            "samples": args.samples,
            "ia_samples": args.ia_samples,
            "micro_vectors": args.micro_vectors,
            "gate_samples": args.gate_samples,
            "workers": args.workers,
            "pipeline_workers": args.pipeline_workers,
            "benchmarks": list(args.benchmarks),
            "snapshot_interval": (args.snapshot_interval
                                  if args.snapshot_interval is not None
                                  else "inf"),
            "fsync": args.fsync,
            "adaptive_ci_target": args.adaptive_ci_target,
            "adaptive_min_runs": args.adaptive_min_runs,
        },
        "micro_dta": micro,
        "phases": phases,
        "backend": backend_block,
        "pipeline": pipeline_block,
        "journal": journal_block,
        "fastforward": fastforward_block,
        "observability": observability_block,
        "adaptive": adaptive_block,
        "layers": layers,
        "telemetry": snapshot,
    }


def validate(data) -> list:
    """Schema check; returns a list of violations (empty = valid)."""
    problems = []

    def need(container, key, kinds, where):
        if not isinstance(container, dict) or key not in container:
            problems.append(f"missing {where}.{key}")
            return None
        value = container[key]
        if not isinstance(value, kinds):
            problems.append(f"{where}.{key} has type "
                            f"{type(value).__name__}")
            return None
        return value

    if need(data, "bench", str, "$") != "repro-pipeline":
        problems.append("$.bench is not 'repro-pipeline'")
    if need(data, "schema_version", int, "$") != SCHEMA_VERSION:
        problems.append(f"$.schema_version is not {SCHEMA_VERSION}")
    need(data, "config", dict, "$")

    phases = need(data, "phases", dict, "$") or {}
    for phase in PHASES:
        entry = need(phases, phase, dict, "$.phases") or {}
        wall = need(entry, "wall_s", (int, float), f"$.phases.{phase}")
        if wall is not None and wall < 0:
            problems.append(f"$.phases.{phase}.wall_s is negative")
        need(entry, "per_benchmark", dict, f"$.phases.{phase}")

    backend = need(data, "backend", dict, "$") or {}
    need(backend, "netlist", str, "$.backend")
    need(backend, "samples", int, "$.backend")
    bp_speedup = need(backend, "speedup", (int, float), "$.backend")
    if bp_speedup is not None and bp_speedup <= 0:
        problems.append("$.backend.speedup is not positive")
    equal = need(backend, "verdicts_equal", bool, "$.backend")
    if equal is False:
        problems.append("$.backend.verdicts_equal is false: the "
                        "bit-parallel engine diverged from the event "
                        "reference on the shared vector stream")
    need(backend, "faulty", int, "$.backend")

    pipeline = need(data, "pipeline", dict, "$") or {}
    need(pipeline, "workers", int, "$.pipeline")
    need(pipeline, "chunk", int, "$.pipeline")
    speedup = need(pipeline, "speedup", (int, float), "$.pipeline")
    if speedup is not None and speedup <= 0:
        problems.append("$.pipeline.speedup is not positive")
    need(pipeline, "warm_fraction", (int, float), "$.pipeline")
    cache = need(pipeline, "cache", dict, "$.pipeline") or {}
    for key in ("hit", "miss", "invalid"):
        need(cache, key, int, "$.pipeline.cache")

    journal = need(data, "journal", dict, "$") or {}
    need(journal, "fsync", str, "$.journal")
    need(journal, "overhead", (int, float), "$.journal")
    for key in ("records", "fsyncs", "write_errors", "crc_failures"):
        need(journal, key, int, "$.journal")

    fastforward = need(data, "fastforward", dict, "$") or {}
    need(fastforward, "interval", (int, str), "$.fastforward")
    ff_speedup = need(fastforward, "speedup", (int, float), "$.fastforward")
    if ff_speedup is not None and ff_speedup <= 0:
        problems.append("$.fastforward.speedup is not positive")
    need(fastforward, "golden_build_s", (int, float), "$.fastforward")
    for key in ("restores", "early_exits", "ops_skipped", "ops_replayed"):
        need(fastforward, key, int, "$.fastforward")
    need(fastforward, "stores", list, "$.fastforward")

    adaptive = need(data, "adaptive", dict, "$") or {}
    need(adaptive, "ci_target", (int, float), "$.adaptive")
    need(adaptive, "min_runs", int, "$.adaptive")
    need(adaptive, "budget_runs", int, "$.adaptive")
    need(adaptive, "executed_runs", int, "$.adaptive")
    savings = need(adaptive, "savings_fraction", (int, float), "$.adaptive")
    if savings is not None and not 0.0 <= savings <= 1.0:
        problems.append("$.adaptive.savings_fraction is outside [0, 1]")
    verdicts = need(adaptive, "verdicts_equal", bool, "$.adaptive")
    if verdicts is False:
        problems.append("$.adaptive.verdicts_equal is false: a fixed-N "
                        "AVM fell outside its adaptive stop interval")
    cells = need(adaptive, "cells", list, "$.adaptive") or []
    for index, cell in enumerate(cells):
        for key in ("cell", "rule"):
            need(cell, key, str, f"$.adaptive.cells[{index}]")
        for key in ("n", "saved"):
            need(cell, key, int, f"$.adaptive.cells[{index}]")
        for key in ("avm", "ci_lo", "ci_hi", "fixed_avm"):
            need(cell, key, (int, float), f"$.adaptive.cells[{index}]")

    observability = need(data, "observability", dict, "$") or {}
    need(observability, "overhead", (int, float), "$.observability")
    scrape = need(observability, "scrape_ok", bool, "$.observability")
    if scrape is False:
        problems.append("$.observability.scrape_ok is false: the control "
                        "plane did not serve the documented metric series")
    need(observability, "trajectory_points", int, "$.observability")
    need(observability, "runs_observed", int, "$.observability")

    layers = need(data, "layers", dict, "$") or {}
    for layer in ("eventsim", "dta", "bitsim", "executor"):
        entry = need(layers, layer, dict, "$.layers") or {}
        need(entry, "wall_s", (int, float), f"$.layers.{layer}")
    for key in ("simulations", "events"):
        need(layers.get("eventsim", {}), key, int, "$.layers.eventsim")
    for key in ("batches", "vectors"):
        need(layers.get("dta", {}), key, int, "$.layers.dta")
    for key in ("batches", "lanes", "gate_evals"):
        need(layers.get("bitsim", {}), key, int, "$.layers.bitsim")
    for key in ("cells", "runs"):
        need(layers.get("executor", {}), key, int, "$.layers.executor")

    telemetry_block = need(data, "telemetry", dict, "$") or {}
    need(telemetry_block, "counters", dict, "$.telemetry")
    need(telemetry_block, "stats", dict, "$.telemetry")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the characterisation/campaign pipeline")
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small", "paper"])
    parser.add_argument("--campaign-scale", default="small",
                        choices=["tiny", "small", "paper"],
                        help="workload scale for the campaign phases "
                             "(larger than --scale so guest execution "
                             "dominates per-run planning overhead)")
    parser.add_argument("--runs", type=int, default=24,
                        help="injection runs per campaign cell")
    parser.add_argument("--samples", type=int, default=4000,
                        help="WA characterisation sample cap per type")
    parser.add_argument("--ia-samples", type=int, default=400_000,
                        help="IA/DA characterisation samples (sized so "
                             "the DTA work dominates the phase)")
    parser.add_argument("--micro-vectors", type=int, default=64,
                        help="gate-level DTA transitions in the microbench")
    parser.add_argument("--gate-samples", type=int, default=2048,
                        help="vector transitions in the gate-backend "
                             "comparison (event vs bit-parallel on the "
                             "identical stream)")
    parser.add_argument("--workers", type=int, default=0,
                        help="executor worker processes (0 = serial)")
    parser.add_argument("--pipeline-workers", type=int, default=4,
                        help="characterization pipeline worker processes")
    parser.add_argument("--snapshot-interval", default="1",
                        help="fast-forward snapshot spacing in step "
                             "boundaries ('inf' = initial snapshot only; "
                             "default 1 = every boundary, the densest "
                             "and fastest configuration)")
    parser.add_argument("--fsync", default="group",
                        choices=["group", "always", "close"],
                        help="journal fsync policy for the "
                             "campaign_journal phase (default: the "
                             "executor's group-commit default)")
    parser.add_argument("--adaptive-ci-target", type=float, default=0.3,
                        help="adaptive stop half-width for the "
                             "campaign_adaptive phase (loose enough for "
                             "the small bench cells to converge)")
    parser.add_argument("--adaptive-min-runs", type=int, default=6,
                        help="adaptive floor: never stop a bench cell "
                             "below this many runs")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--benchmarks", default=",".join(DEFAULT_BENCHMARKS),
                        help="comma-separated benchmark list")
    parser.add_argument("--output", default="BENCH_campaign.json")
    parser.add_argument("--cache-stats", metavar="FILE", default=None,
                        help="also write the pipeline block (speedup, "
                             "cache hit/miss) to this JSON file")
    parser.add_argument("--validate", metavar="FILE", default=None,
                        help="validate an existing bench file and exit")
    args = parser.parse_args(argv)

    if args.validate:
        problems = validate(json.loads(Path(args.validate).read_text()))
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        print(f"{args.validate}: "
              + ("INVALID" if problems else "valid"))
        return 1 if problems else 0

    args.benchmarks = tuple(
        part.strip() for part in args.benchmarks.split(",") if part.strip()
    )
    args.snapshot_interval = (None if args.snapshot_interval == "inf"
                              else int(args.snapshot_interval))
    data = bench_pipeline(args)
    problems = validate(data)
    if problems:  # pragma: no cover - self-check
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1

    out = Path(args.output)
    out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out}")
    if args.cache_stats:
        stats_out = Path(args.cache_stats)
        stats_out.write_text(json.dumps(data["pipeline"], indent=2) + "\n")
        print(f"wrote {stats_out}")
    print(f"  micro DTA : {data['micro_dta']['wall_s']:8.3f}s "
          f"({data['micro_dta']['transitions']} transitions)")
    for phase in PHASES:
        print(f"  {phase:<21}: {data['phases'][phase]['wall_s']:8.3f}s")
    backend = data["backend"]
    print(f"  bitsim speedup        : {backend['speedup']:.2f}x "
          f"({backend['samples']} transitions on {backend['netlist']}, "
          f"verdicts {'equal' if backend['verdicts_equal'] else 'DIVERGED'})")
    pipe = data["pipeline"]
    print(f"  pipeline speedup      : {pipe['speedup']:.2f}x "
          f"(workers={pipe['workers']}, chunk={pipe['chunk']})")
    print(f"  warm-cache fraction   : {pipe['warm_fraction']:.3f} "
          f"(cache: {pipe['cache']['hit']} hit / "
          f"{pipe['cache']['miss']} miss)")
    journal = data["journal"]
    print(f"  journal overhead      : {journal['overhead']:+.1%} "
          f"(fsync={journal['fsync']}, {journal['records']} records, "
          f"{journal['fsyncs']} fsyncs)")
    ff = data["fastforward"]
    print(f"  fast-forward speedup  : {ff['speedup']:.2f}x "
          f"(interval={ff['interval']}, {ff['restores']} restores, "
          f"{ff['early_exits']} early exits, "
          f"{ff['ops_skipped']} ops skipped)")
    obs = data["observability"]
    print(f"  observability overhead: {obs['overhead']:+.1%} "
          f"(scrape {'ok' if obs['scrape_ok'] else 'FAILED'}, "
          f"{obs['trajectory_points']} trajectory points, "
          f"{obs['runs_observed']} runs observed)")
    adaptive = data["adaptive"]
    print(f"  adaptive sampling     : "
          f"{adaptive['executed_runs']}/{adaptive['budget_runs']} runs "
          f"({adaptive['savings_fraction']:.0%} saved at ±"
          f"{adaptive['ci_target']}, verdicts "
          f"{'equal' if adaptive['verdicts_equal'] else 'DIVERGED'})")
    for layer in ("eventsim", "dta", "bitsim", "executor"):
        print(f"  [{layer}] {data['layers'][layer]['wall_s']:8.3f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
