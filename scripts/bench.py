#!/usr/bin/env python
"""Benchmark the DTA -> model -> campaign pipeline; emit BENCH_campaign.json.

Times the paper's two phases with telemetry enabled:

1. *micro*: gate-level DTA on a ripple adder, exercising the eventsim
   layer in isolation,
2. *golden*: workload construction + golden runs per benchmark,
3. *characterize*: serial reference model development (WA per benchmark
   plus the shared IA and DA models — the FPU DTA layer),
4. *characterize_parallel*: the same model set through the parallel,
   content-addressed characterization pipeline (cold cache),
5. *characterize_warm*: the pipeline again on the warm cache (every
   model is a cache hit; measures the near-zero-cost rerun),
6. *campaign*: a small injection campaign per benchmark through the
   fault-tolerant executor.

The emitted JSON carries per-phase wall times, per-layer
(eventsim/dta/executor) timings pulled from the telemetry collector and
a ``pipeline`` block (speedup, warm fraction, cache hit/miss counts), so
`BENCH_campaign.json` accumulates a comparable perf trajectory across
commits.  `--validate FILE` checks an existing file against the schema
(used by the CI bench smoke job) and exits non-zero on violations.
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import telemetry                              # noqa: E402
from repro.campaign.executor import (                    # noqa: E402
    CampaignExecutor,
    ExecutorConfig,
)
from repro.campaign.runner import CampaignRunner         # noqa: E402
from repro.circuit.builder import build_adder, bus_values  # noqa: E402
from repro.circuit.dta import DynamicTimingAnalysis      # noqa: E402
from repro.circuit.liberty import VR15, VR20             # noqa: E402
from repro.circuit.sta import StaticTimingAnalysis       # noqa: E402
from repro.errors import (                               # noqa: E402
    CharacterizationPipeline,
    PipelineConfig,
    characterize_da,
    characterize_ia,
    characterize_wa,
)
from repro.fpu.unit import DEFAULT_DTA_BATCH             # noqa: E402
from repro.utils.rng import RngStream                    # noqa: E402
from repro.workloads import make_workload                # noqa: E402

#: v2 splits golden runs out of the characterize phase and adds the
#: characterize_parallel / characterize_warm phases plus the pipeline
#: speedup block.
SCHEMA_VERSION = 2

PHASES = ("golden", "characterize", "characterize_parallel",
          "characterize_warm", "campaign")

DEFAULT_BENCHMARKS = ("kmeans", "hotspot")


def _stat(snapshot, name):
    """One stats entry of a telemetry snapshot, zeroed when absent."""
    stat = snapshot["stats"].get(name)
    if stat is None:
        return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0}
    return stat


def bench_micro_dta(vectors: int, seed: int) -> dict:
    """Gate-level DTA on a 16-bit adder: the eventsim-layer microbench."""
    netlist = build_adder(16)
    clock = StaticTimingAnalysis(netlist).critical_delay()
    dta = DynamicTimingAnalysis(netlist, clock_ps=clock, delay_factor=1.3)
    rng = RngStream(seed, "bench-micro")
    stream = [
        {**bus_values("a", 16, int(rng.integers(0, 1 << 16))),
         **bus_values("b", 16, int(rng.integers(0, 1 << 16)))}
        for _ in range(vectors + 1)
    ]
    start = time.perf_counter()
    outcomes = dta.analyze_sequence(stream)
    wall = time.perf_counter() - start
    faulty = sum(1 for o in outcomes if o.faulty)
    return {"wall_s": wall, "transitions": len(outcomes),
            "faulty": faulty, "clock_ps": clock}


def _characterize_models(args, profiles, points, phase: dict,
                         pipeline=None) -> dict:
    """One full model-development pass: WA per benchmark + IA + DA.

    ``pipeline=None`` is the serial reference; otherwise the parallel,
    cache-aware engine runs the identical model set.  Per-model wall
    times land in ``phase["per_benchmark"]`` (IA/DA under the ``ia`` /
    ``da`` pseudo-entries).
    """
    models = {}
    for name, profile in profiles.items():
        start = time.perf_counter()
        models[name] = characterize_wa(profile, points,
                                       max_samples=args.samples,
                                       pipeline=pipeline)
        phase["per_benchmark"][name] = time.perf_counter() - start
    start = time.perf_counter()
    characterize_ia(points, samples_per_op=args.ia_samples,
                    seed=args.seed, pipeline=pipeline)
    phase["per_benchmark"]["ia"] = time.perf_counter() - start
    start = time.perf_counter()
    characterize_da(list(profiles.values()), points,
                    sample_per_point=args.ia_samples, seed=args.seed,
                    pipeline=pipeline)
    phase["per_benchmark"]["da"] = time.perf_counter() - start
    phase["wall_s"] = sum(phase["per_benchmark"].values())
    return models


def bench_pipeline(args) -> dict:
    telemetry.enable()
    points = [VR15, VR20]
    phases = {name: {"wall_s": 0.0, "per_benchmark": {}}
              for name in PHASES}

    micro = bench_micro_dta(args.micro_vectors, args.seed)

    runners = {}
    profiles = {}
    for name in args.benchmarks:
        start = time.perf_counter()
        workload = make_workload(name, scale=args.scale, seed=args.seed)
        runner = CampaignRunner(workload, seed=args.seed)
        profiles[name] = runner.golden().profile
        runners[name] = runner
        phases["golden"]["per_benchmark"][name] = (
            time.perf_counter() - start
        )
    phases["golden"]["wall_s"] = sum(
        phases["golden"]["per_benchmark"].values()
    )

    models = _characterize_models(args, profiles, points,
                                  phases["characterize"])

    with tempfile.TemporaryDirectory(prefix="bench-mcache-") as tmp:
        cold = CharacterizationPipeline(PipelineConfig(
            workers=args.pipeline_workers, chunk=DEFAULT_DTA_BATCH,
            cache_dir=Path(tmp), use_cache=True))
        _characterize_models(args, profiles, points,
                             phases["characterize_parallel"], pipeline=cold)
        warm = CharacterizationPipeline(PipelineConfig(
            workers=args.pipeline_workers, chunk=DEFAULT_DTA_BATCH,
            cache_dir=Path(tmp), use_cache=True))
        _characterize_models(args, profiles, points,
                             phases["characterize_warm"], pipeline=warm)
        cache_stats = {"cold": cold.cache.stats(),
                       "warm": warm.cache.stats()}

    for name, runner in runners.items():
        start = time.perf_counter()
        config = ExecutorConfig(workers=args.workers)
        with CampaignExecutor(runner, config=config) as executor:
            for point in points:
                executor.run_cell(models[name], point, runs=args.runs)
        phases["campaign"]["per_benchmark"][name] = (
            time.perf_counter() - start
        )
    phases["campaign"]["wall_s"] = sum(
        phases["campaign"]["per_benchmark"].values()
    )

    snapshot = telemetry.snapshot()
    telemetry.disable()

    serial = phases["characterize"]["wall_s"]
    parallel = phases["characterize_parallel"]["wall_s"]
    warm_wall = phases["characterize_warm"]["wall_s"]
    pipeline_block = {
        "workers": args.pipeline_workers,
        "chunk": DEFAULT_DTA_BATCH,
        "speedup": (serial / parallel) if parallel > 0 else None,
        "warm_fraction": (warm_wall / serial) if serial > 0 else None,
        "cache": {
            "hit": cache_stats["cold"]["hit"] + cache_stats["warm"]["hit"],
            "miss": (cache_stats["cold"]["miss"]
                     + cache_stats["warm"]["miss"]),
            "invalid": (cache_stats["cold"]["invalid"]
                        + cache_stats["warm"]["invalid"]),
            "cold": cache_stats["cold"],
            "warm": cache_stats["warm"],
        },
    }

    counters = snapshot["counters"]
    layers = {
        "eventsim": {
            "wall_s": micro["wall_s"],
            "simulations": int(counters.get("eventsim.simulations", 0)),
            "events": int(counters.get("eventsim.events", 0)),
        },
        "dta": {
            "wall_s": _stat(snapshot, "fpu.dta")["total"],
            "batches": int(counters.get("fpu.dta.batches", 0)),
            "vectors": int(counters.get("fpu.dta.vectors", 0)),
        },
        "executor": {
            "wall_s": _stat(snapshot, "campaign.cell")["total"],
            "cells": int(counters.get("campaign.cells", 0)),
            "runs": int(counters.get("campaign.runs.executed", 0)),
            "run_ms": _stat(snapshot, "campaign.run_ms"),
        },
    }

    return {
        "bench": "repro-pipeline",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "scale": args.scale,
            "seed": args.seed,
            "runs": args.runs,
            "samples": args.samples,
            "ia_samples": args.ia_samples,
            "micro_vectors": args.micro_vectors,
            "workers": args.workers,
            "pipeline_workers": args.pipeline_workers,
            "benchmarks": list(args.benchmarks),
        },
        "micro_dta": micro,
        "phases": phases,
        "pipeline": pipeline_block,
        "layers": layers,
        "telemetry": snapshot,
    }


def validate(data) -> list:
    """Schema check; returns a list of violations (empty = valid)."""
    problems = []

    def need(container, key, kinds, where):
        if not isinstance(container, dict) or key not in container:
            problems.append(f"missing {where}.{key}")
            return None
        value = container[key]
        if not isinstance(value, kinds):
            problems.append(f"{where}.{key} has type "
                            f"{type(value).__name__}")
            return None
        return value

    if need(data, "bench", str, "$") != "repro-pipeline":
        problems.append("$.bench is not 'repro-pipeline'")
    if need(data, "schema_version", int, "$") != SCHEMA_VERSION:
        problems.append(f"$.schema_version is not {SCHEMA_VERSION}")
    need(data, "config", dict, "$")

    phases = need(data, "phases", dict, "$") or {}
    for phase in PHASES:
        entry = need(phases, phase, dict, "$.phases") or {}
        wall = need(entry, "wall_s", (int, float), f"$.phases.{phase}")
        if wall is not None and wall < 0:
            problems.append(f"$.phases.{phase}.wall_s is negative")
        need(entry, "per_benchmark", dict, f"$.phases.{phase}")

    pipeline = need(data, "pipeline", dict, "$") or {}
    need(pipeline, "workers", int, "$.pipeline")
    need(pipeline, "chunk", int, "$.pipeline")
    speedup = need(pipeline, "speedup", (int, float), "$.pipeline")
    if speedup is not None and speedup <= 0:
        problems.append("$.pipeline.speedup is not positive")
    need(pipeline, "warm_fraction", (int, float), "$.pipeline")
    cache = need(pipeline, "cache", dict, "$.pipeline") or {}
    for key in ("hit", "miss", "invalid"):
        need(cache, key, int, "$.pipeline.cache")

    layers = need(data, "layers", dict, "$") or {}
    for layer in ("eventsim", "dta", "executor"):
        entry = need(layers, layer, dict, "$.layers") or {}
        need(entry, "wall_s", (int, float), f"$.layers.{layer}")
    for key in ("simulations", "events"):
        need(layers.get("eventsim", {}), key, int, "$.layers.eventsim")
    for key in ("batches", "vectors"):
        need(layers.get("dta", {}), key, int, "$.layers.dta")
    for key in ("cells", "runs"):
        need(layers.get("executor", {}), key, int, "$.layers.executor")

    telemetry_block = need(data, "telemetry", dict, "$") or {}
    need(telemetry_block, "counters", dict, "$.telemetry")
    need(telemetry_block, "stats", dict, "$.telemetry")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the characterisation/campaign pipeline")
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small", "paper"])
    parser.add_argument("--runs", type=int, default=24,
                        help="injection runs per campaign cell")
    parser.add_argument("--samples", type=int, default=4000,
                        help="WA characterisation sample cap per type")
    parser.add_argument("--ia-samples", type=int, default=400_000,
                        help="IA/DA characterisation samples (sized so "
                             "the DTA work dominates the phase)")
    parser.add_argument("--micro-vectors", type=int, default=64,
                        help="gate-level DTA transitions in the microbench")
    parser.add_argument("--workers", type=int, default=0,
                        help="executor worker processes (0 = serial)")
    parser.add_argument("--pipeline-workers", type=int, default=4,
                        help="characterization pipeline worker processes")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--benchmarks", default=",".join(DEFAULT_BENCHMARKS),
                        help="comma-separated benchmark list")
    parser.add_argument("--output", default="BENCH_campaign.json")
    parser.add_argument("--cache-stats", metavar="FILE", default=None,
                        help="also write the pipeline block (speedup, "
                             "cache hit/miss) to this JSON file")
    parser.add_argument("--validate", metavar="FILE", default=None,
                        help="validate an existing bench file and exit")
    args = parser.parse_args(argv)

    if args.validate:
        problems = validate(json.loads(Path(args.validate).read_text()))
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        print(f"{args.validate}: "
              + ("INVALID" if problems else "valid"))
        return 1 if problems else 0

    args.benchmarks = tuple(
        part.strip() for part in args.benchmarks.split(",") if part.strip()
    )
    data = bench_pipeline(args)
    problems = validate(data)
    if problems:  # pragma: no cover - self-check
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1

    out = Path(args.output)
    out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out}")
    if args.cache_stats:
        stats_out = Path(args.cache_stats)
        stats_out.write_text(json.dumps(data["pipeline"], indent=2) + "\n")
        print(f"wrote {stats_out}")
    print(f"  micro DTA : {data['micro_dta']['wall_s']:8.3f}s "
          f"({data['micro_dta']['transitions']} transitions)")
    for phase in PHASES:
        print(f"  {phase:<21}: {data['phases'][phase]['wall_s']:8.3f}s")
    pipe = data["pipeline"]
    print(f"  pipeline speedup      : {pipe['speedup']:.2f}x "
          f"(workers={pipe['workers']}, chunk={pipe['chunk']})")
    print(f"  warm-cache fraction   : {pipe['warm_fraction']:.3f} "
          f"(cache: {pipe['cache']['hit']} hit / "
          f"{pipe['cache']['miss']} miss)")
    for layer in ("eventsim", "dta", "executor"):
        print(f"  [{layer}] {data['layers'][layer]['wall_s']:8.3f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
