#!/usr/bin/env python
"""Benchmark the DTA -> model -> campaign pipeline; emit BENCH_campaign.json.

Times the paper's two phases with telemetry enabled:

1. *micro*: gate-level DTA on a ripple adder, exercising the eventsim
   layer in isolation,
2. *characterize*: WA-model development per benchmark (the FPU DTA
   layer),
3. *campaign*: a small injection campaign per benchmark through the
   fault-tolerant executor.

The emitted JSON carries per-phase wall times and per-layer
(eventsim/dta/executor) timings pulled from the telemetry collector, so
`BENCH_campaign.json` accumulates a comparable perf trajectory across
commits.  `--validate FILE` checks an existing file against the schema
(used by the CI bench smoke job) and exits non-zero on violations.
"""

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import telemetry                              # noqa: E402
from repro.campaign.executor import (                    # noqa: E402
    CampaignExecutor,
    ExecutorConfig,
)
from repro.campaign.runner import CampaignRunner         # noqa: E402
from repro.circuit.builder import build_adder, bus_values  # noqa: E402
from repro.circuit.dta import DynamicTimingAnalysis      # noqa: E402
from repro.circuit.liberty import VR15, VR20             # noqa: E402
from repro.circuit.sta import StaticTimingAnalysis       # noqa: E402
from repro.errors import characterize_wa                 # noqa: E402
from repro.utils.rng import RngStream                    # noqa: E402
from repro.workloads import make_workload                # noqa: E402

SCHEMA_VERSION = 1

DEFAULT_BENCHMARKS = ("kmeans", "hotspot")


def _stat(snapshot, name):
    """One stats entry of a telemetry snapshot, zeroed when absent."""
    stat = snapshot["stats"].get(name)
    if stat is None:
        return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0}
    return stat


def bench_micro_dta(vectors: int, seed: int) -> dict:
    """Gate-level DTA on a 16-bit adder: the eventsim-layer microbench."""
    netlist = build_adder(16)
    clock = StaticTimingAnalysis(netlist).critical_delay()
    dta = DynamicTimingAnalysis(netlist, clock_ps=clock, delay_factor=1.3)
    rng = RngStream(seed, "bench-micro")
    stream = [
        {**bus_values("a", 16, int(rng.integers(0, 1 << 16))),
         **bus_values("b", 16, int(rng.integers(0, 1 << 16)))}
        for _ in range(vectors + 1)
    ]
    start = time.perf_counter()
    outcomes = dta.analyze_sequence(stream)
    wall = time.perf_counter() - start
    faulty = sum(1 for o in outcomes if o.faulty)
    return {"wall_s": wall, "transitions": len(outcomes),
            "faulty": faulty, "clock_ps": clock}


def bench_pipeline(args) -> dict:
    telemetry.enable()
    points = [VR15, VR20]
    phases = {"characterize": {"wall_s": 0.0, "per_benchmark": {}},
              "campaign": {"wall_s": 0.0, "per_benchmark": {}}}

    micro = bench_micro_dta(args.micro_vectors, args.seed)

    runners = {}
    models = {}
    for name in args.benchmarks:
        start = time.perf_counter()
        workload = make_workload(name, scale=args.scale, seed=args.seed)
        runner = CampaignRunner(workload, seed=args.seed)
        profile = runner.golden().profile
        models[name] = characterize_wa(profile, points,
                                       max_samples=args.samples)
        runners[name] = runner
        phases["characterize"]["per_benchmark"][name] = (
            time.perf_counter() - start
        )
    phases["characterize"]["wall_s"] = sum(
        phases["characterize"]["per_benchmark"].values()
    )

    for name, runner in runners.items():
        start = time.perf_counter()
        config = ExecutorConfig(workers=args.workers)
        with CampaignExecutor(runner, config=config) as executor:
            for point in points:
                executor.run_cell(models[name], point, runs=args.runs)
        phases["campaign"]["per_benchmark"][name] = (
            time.perf_counter() - start
        )
    phases["campaign"]["wall_s"] = sum(
        phases["campaign"]["per_benchmark"].values()
    )

    snapshot = telemetry.snapshot()
    telemetry.disable()

    counters = snapshot["counters"]
    layers = {
        "eventsim": {
            "wall_s": micro["wall_s"],
            "simulations": int(counters.get("eventsim.simulations", 0)),
            "events": int(counters.get("eventsim.events", 0)),
        },
        "dta": {
            "wall_s": _stat(snapshot, "fpu.dta")["total"],
            "batches": int(counters.get("fpu.dta.batches", 0)),
            "vectors": int(counters.get("fpu.dta.vectors", 0)),
        },
        "executor": {
            "wall_s": _stat(snapshot, "campaign.cell")["total"],
            "cells": int(counters.get("campaign.cells", 0)),
            "runs": int(counters.get("campaign.runs.executed", 0)),
            "run_ms": _stat(snapshot, "campaign.run_ms"),
        },
    }

    return {
        "bench": "repro-pipeline",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "scale": args.scale,
            "seed": args.seed,
            "runs": args.runs,
            "samples": args.samples,
            "micro_vectors": args.micro_vectors,
            "workers": args.workers,
            "benchmarks": list(args.benchmarks),
        },
        "micro_dta": micro,
        "phases": phases,
        "layers": layers,
        "telemetry": snapshot,
    }


def validate(data) -> list:
    """Schema check; returns a list of violations (empty = valid)."""
    problems = []

    def need(container, key, kinds, where):
        if not isinstance(container, dict) or key not in container:
            problems.append(f"missing {where}.{key}")
            return None
        value = container[key]
        if not isinstance(value, kinds):
            problems.append(f"{where}.{key} has type "
                            f"{type(value).__name__}")
            return None
        return value

    if need(data, "bench", str, "$") != "repro-pipeline":
        problems.append("$.bench is not 'repro-pipeline'")
    if need(data, "schema_version", int, "$") != SCHEMA_VERSION:
        problems.append(f"$.schema_version is not {SCHEMA_VERSION}")
    need(data, "config", dict, "$")

    phases = need(data, "phases", dict, "$") or {}
    for phase in ("characterize", "campaign"):
        entry = need(phases, phase, dict, "$.phases") or {}
        wall = need(entry, "wall_s", (int, float), f"$.phases.{phase}")
        if wall is not None and wall < 0:
            problems.append(f"$.phases.{phase}.wall_s is negative")
        need(entry, "per_benchmark", dict, f"$.phases.{phase}")

    layers = need(data, "layers", dict, "$") or {}
    for layer in ("eventsim", "dta", "executor"):
        entry = need(layers, layer, dict, "$.layers") or {}
        need(entry, "wall_s", (int, float), f"$.layers.{layer}")
    for key in ("simulations", "events"):
        need(layers.get("eventsim", {}), key, int, "$.layers.eventsim")
    for key in ("batches", "vectors"):
        need(layers.get("dta", {}), key, int, "$.layers.dta")
    for key in ("cells", "runs"):
        need(layers.get("executor", {}), key, int, "$.layers.executor")

    telemetry_block = need(data, "telemetry", dict, "$") or {}
    need(telemetry_block, "counters", dict, "$.telemetry")
    need(telemetry_block, "stats", dict, "$.telemetry")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the characterisation/campaign pipeline")
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small", "paper"])
    parser.add_argument("--runs", type=int, default=24,
                        help="injection runs per campaign cell")
    parser.add_argument("--samples", type=int, default=4000,
                        help="WA characterisation sample cap per type")
    parser.add_argument("--micro-vectors", type=int, default=64,
                        help="gate-level DTA transitions in the microbench")
    parser.add_argument("--workers", type=int, default=0,
                        help="executor worker processes (0 = serial)")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--benchmarks", default=",".join(DEFAULT_BENCHMARKS),
                        help="comma-separated benchmark list")
    parser.add_argument("--output", default="BENCH_campaign.json")
    parser.add_argument("--validate", metavar="FILE", default=None,
                        help="validate an existing bench file and exit")
    args = parser.parse_args(argv)

    if args.validate:
        problems = validate(json.loads(Path(args.validate).read_text()))
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        print(f"{args.validate}: "
              + ("INVALID" if problems else "valid"))
        return 1 if problems else 0

    args.benchmarks = tuple(
        part.strip() for part in args.benchmarks.split(",") if part.strip()
    )
    data = bench_pipeline(args)
    problems = validate(data)
    if problems:  # pragma: no cover - self-check
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1

    out = Path(args.output)
    out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out}")
    print(f"  micro DTA : {data['micro_dta']['wall_s']:8.3f}s "
          f"({data['micro_dta']['transitions']} transitions)")
    for phase in ("characterize", "campaign"):
        print(f"  {phase:<10}: {data['phases'][phase]['wall_s']:8.3f}s")
    for layer in ("eventsim", "dta", "executor"):
        print(f"  [{layer}] {data['layers'][layer]['wall_s']:8.3f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
