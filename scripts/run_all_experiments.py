#!/usr/bin/env python
"""Regenerate every table and figure at paper-grade campaign sizes.

Writes the full text report to stdout; EXPERIMENTS.md records the run.
Campaign cells use the paper's 1068 statistically sized runs.
"""

import argparse
import time

from repro.campaign.executor import ExecutorConfig
from repro.campaign.report import executor_stats_table
from repro.experiments import (
    avm_analysis,
    fig4_paths,
    fig5_bitflips,
    fig6_convergence,
    fig7_ia,
    fig8_wa,
    fig9_outcomes,
    fig10_error_ratio,
    table1_models,
    table2_benchmarks,
)
from repro.experiments.context import ExperimentContext
from repro.fpu.formats import FpOp


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--runs", type=int, default=1068)
    parser.add_argument("--scale", default="small")
    parser.add_argument("--samples", type=int, default=100_000)
    parser.add_argument("--workers", type=int, default=0,
                        help="isolated worker processes per campaign cell "
                             "(0 = serial in-process)")
    parser.add_argument("--wall-timeout", type=float, default=300.0,
                        help="per-run wall-clock watchdog in seconds")
    parser.add_argument("--journal", default=None,
                        help="append-only JSONL run journal for "
                             "checkpoint/resume")
    parser.add_argument("--resume", action="store_true",
                        help="resume the campaigns from an existing journal")
    args = parser.parse_args()

    t0 = time.time()
    print(f"# Full experiment regeneration (scale={args.scale}, "
          f"runs={args.runs}, characterisation samples={args.samples})\n")

    context = ExperimentContext.create(
        scale=args.scale, seed=2021,
        characterization_samples=args.samples,
    )
    print(f"[model development done in {time.time() - t0:.0f}s]\n")

    print(table1_models.render(table1_models.run()), "\n")
    print(table2_benchmarks.render(table2_benchmarks.run(context=context)),
          "\n")
    print(fig4_paths.render(fig4_paths.run(k=1000)), "\n")
    print(fig5_bitflips.render(
        fig5_bitflips.run(samples_per_op=args.samples)), "\n")
    print(fig6_convergence.render(fig6_convergence.run(
        profile=context.profiles["is"],
        sample_sizes=(1_000, 10_000, min(args.samples, 1_000_000)),
        op=FpOp.MUL_D)), "\n")
    print(fig7_ia.render(fig7_ia.run(model=context.ia)), "\n")
    print(fig8_wa.render(fig8_wa.run(context=context)), "\n")

    t1 = time.time()
    executor_config = ExecutorConfig(
        workers=args.workers,
        wall_clock_timeout=args.wall_timeout,
        journal_path=args.journal,
        resume=args.resume,
    )
    campaigns = context.run_campaigns(runs=args.runs,
                                      config=executor_config)
    print(f"[{len(campaigns)} campaign cells x {args.runs} runs in "
          f"{time.time() - t1:.0f}s]\n")
    print(executor_stats_table(campaigns), "\n")

    print(fig9_outcomes.render(
        fig9_outcomes.Fig9Result(results=campaigns,
                                 runs_per_cell=args.runs)), "\n")
    print(fig10_error_ratio.render(
        fig10_error_ratio.run(campaign_results=campaigns)), "\n")
    print(avm_analysis.render(
        avm_analysis.run(context=context, campaign_results=campaigns)), "\n")

    print(f"[total {time.time() - t0:.0f}s]")


if __name__ == "__main__":
    main()
