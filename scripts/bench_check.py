#!/usr/bin/env python
"""Regression gate over BENCH_campaign.json: candidate vs baseline.

Compares a freshly measured pipeline benchmark (``scripts/bench.py
--output BENCH_fresh.json``) against the committed baseline, phase by
phase and layer by layer, and exits non-zero when any timing regressed
past the tolerance — the CI bench smoke job's tripwire against perf
regressions sneaking in as "just one more abstraction layer".

Only wall times gate; throughput counters (transitions, vectors, runs)
are compared for config drift and reported, never failed on.  Times
under ``--min-seconds`` are ignored entirely: at micro scale the noise
floor of a shared CI box exceeds any signal.
"""

import argparse
import json
import sys
from pathlib import Path


def _flatten_times(report: dict) -> dict:
    """{metric name: wall seconds} for every gated timing in a report."""
    out = {}
    micro = report.get("micro_dta") or {}
    if "wall_s" in micro:
        out["micro_dta"] = float(micro["wall_s"])
    for phase, data in (report.get("phases") or {}).items():
        if "wall_s" in data:
            out[f"phase.{phase}"] = float(data["wall_s"])
        for bench, wall in (data.get("per_benchmark") or {}).items():
            out[f"phase.{phase}.{bench}"] = float(wall)
    for layer, data in (report.get("layers") or {}).items():
        if "wall_s" in data:
            out[f"layer.{layer}"] = float(data["wall_s"])
    return out


def compare(baseline: dict, candidate: dict, tolerance: float,
            min_seconds: float):
    """Per-metric deltas plus the list of metrics past the tolerance.

    Returns ``(rows, regressions, config_mismatch)`` where each row is
    ``(metric, base_s, cand_s, delta_fraction_or_None, verdict)``.
    """
    base_times = _flatten_times(baseline)
    cand_times = _flatten_times(candidate)
    rows = []
    regressions = []
    for metric in sorted(set(base_times) | set(cand_times)):
        base = base_times.get(metric)
        cand = cand_times.get(metric)
        if base is None or cand is None:
            rows.append((metric, base, cand, None, "only-one-side"))
            continue
        if base < min_seconds and cand < min_seconds:
            rows.append((metric, base, cand, None, "below-noise-floor"))
            continue
        delta = (cand - base) / base if base > 0 else float("inf")
        if delta > tolerance:
            verdict = "REGRESSED"
            regressions.append(metric)
        elif delta < -tolerance:
            verdict = "improved"
        else:
            verdict = "ok"
        rows.append((metric, base, cand, delta, verdict))
    mismatch = (baseline.get("config") or {}) != (candidate.get("config")
                                                  or {})
    return rows, regressions, mismatch


def render(rows, tolerance: float) -> str:
    headers = ("metric", "baseline", "candidate", "delta", "verdict")
    table = [headers, tuple("-" * len(h) for h in headers)]
    for metric, base, cand, delta, verdict in rows:
        table.append((
            metric,
            "-" if base is None else f"{base:.4f}s",
            "-" if cand is None else f"{cand:.4f}s",
            "-" if delta is None else f"{delta:+.1%}",
            verdict,
        ))
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths))
             for row in table]
    lines.append(f"(gate: candidate > baseline x {1 + tolerance:.2f})")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate a fresh pipeline benchmark against the "
                    "committed baseline.")
    parser.add_argument("--baseline", default="BENCH_campaign.json",
                        help="committed reference report")
    parser.add_argument("--candidate", required=True,
                        help="freshly measured report to gate")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional slowdown per metric "
                             "(default 0.25 = +25%%)")
    parser.add_argument("--min-seconds", type=float, default=0.01,
                        help="ignore metrics below this wall time on "
                             "both sides (noise floor)")
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(Path(args.baseline).read_text())
        candidate = json.loads(Path(args.candidate).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_check: cannot load reports: {exc}", file=sys.stderr)
        return 2
    if baseline.get("schema_version") != candidate.get("schema_version"):
        print("bench_check: schema_version mismatch "
              f"({baseline.get('schema_version')} vs "
              f"{candidate.get('schema_version')}); re-measure the "
              "baseline", file=sys.stderr)
        return 2

    rows, regressions, mismatch = compare(
        baseline, candidate, args.tolerance, args.min_seconds)
    print(render(rows, args.tolerance))
    if mismatch:
        print("warning: benchmark configs differ between baseline and "
              "candidate; deltas may not be comparable")
    if regressions:
        print(f"bench_check: {len(regressions)} metric(s) regressed past "
              f"+{args.tolerance:.0%}: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    print("bench_check: no regression past tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
