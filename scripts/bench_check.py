#!/usr/bin/env python
"""Regression gate over BENCH_campaign.json: candidate vs baseline.

Compares a freshly measured pipeline benchmark (``scripts/bench.py
--output BENCH_fresh.json``) against the committed baseline, phase by
phase and layer by layer, and exits non-zero when any timing regressed
past the tolerance — the CI bench smoke job's tripwire against perf
regressions sneaking in as "just one more abstraction layer".

Only wall times gate; throughput counters (transitions, vectors, runs)
are compared for config drift and reported, never failed on.  Times
under ``--min-seconds`` are ignored entirely: at micro scale the noise
floor of a shared CI box exceeds any signal.

Schema v2 reports additionally gate the characterization pipeline on
the *candidate* alone: the parallel phase must beat the serial
reference by ``--pipeline-speedup-min`` and the warm-cache rerun must
cost at most ``--warm-max-fraction`` of the serial phase (with a small
absolute floor for noise).  Reports without the pipeline phases skip
these gates.

Schema v3 reports also gate the campaign fast-forward engine on the
candidate alone: the campaign_fastforward phase (snapshot restore +
suffix replay) must beat the full-replay campaign phase by
``--fastforward-speedup-min``.  Reports without the phase skip the
gate.

Schema v4 reports also gate the journaling overhead on the candidate
alone: the campaign_journal phase (the same cells with the
CRC-checksummed run journal attached) may cost at most
``--journal-overhead-max`` over the unjournaled campaign phase (with a
small absolute floor for noise) — keeping the crash-consistency tax of
the default group-commit fsync policy honest.  Reports without the
phase skip the gate.

Schema v5 reports also gate the bit-parallel gate-level engine on the
candidate alone: the characterize_bitparallel phase must beat the
characterize_gate (event-driven reference) phase by
``--bitsim-speedup-min`` on the byte-identical vector stream, and the
two engines' verdicts must agree exactly.  Reports without the phases
skip the gate.

Schema v6 reports also gate the observability overhead on the candidate
alone: the campaign_observed phase (the same cells with the metrics
registry, status board, trajectory recorder and HTTP control plane
attached) may cost at most ``--observability-overhead-max`` over the
unobserved campaign phase (with a small absolute floor for noise), and
the control plane's mid-run scrape must have served the documented
series.  Reports without the phase skip the gate.

Schema v7 reports also gate the adaptive sampler on the candidate
alone: the campaign_adaptive phase (the same cells under the
sequential CI-target stopping rule) must save at least
``--adaptive-savings-min`` of the fixed-N run budget, and every
fixed-N AVM must land inside its cell's adaptive stop interval
(verdicts_equal) — runs saved only count when the verdict is
unchanged.  Reports without the phase skip the gate.
"""

import argparse
import json
import sys
from pathlib import Path


def _flatten_times(report: dict) -> dict:
    """{metric name: wall seconds} for every gated timing in a report."""
    out = {}
    micro = report.get("micro_dta") or {}
    if "wall_s" in micro:
        out["micro_dta"] = float(micro["wall_s"])
    for phase, data in (report.get("phases") or {}).items():
        if "wall_s" in data:
            out[f"phase.{phase}"] = float(data["wall_s"])
        for bench, wall in (data.get("per_benchmark") or {}).items():
            out[f"phase.{phase}.{bench}"] = float(wall)
    for layer, data in (report.get("layers") or {}).items():
        if "wall_s" in data:
            out[f"layer.{layer}"] = float(data["wall_s"])
    return out


def compare(baseline: dict, candidate: dict, tolerance: float,
            min_seconds: float):
    """Per-metric deltas plus the list of metrics past the tolerance.

    Returns ``(rows, regressions, config_mismatch)`` where each row is
    ``(metric, base_s, cand_s, delta_fraction_or_None, verdict)``.
    """
    base_times = _flatten_times(baseline)
    cand_times = _flatten_times(candidate)
    rows = []
    regressions = []
    for metric in sorted(set(base_times) | set(cand_times)):
        base = base_times.get(metric)
        cand = cand_times.get(metric)
        if base is None or cand is None:
            rows.append((metric, base, cand, None, "only-one-side"))
            continue
        if base < min_seconds and cand < min_seconds:
            rows.append((metric, base, cand, None, "below-noise-floor"))
            continue
        delta = (cand - base) / base if base > 0 else float("inf")
        if delta > tolerance:
            verdict = "REGRESSED"
            regressions.append(metric)
        elif delta < -tolerance:
            verdict = "improved"
        else:
            verdict = "ok"
        rows.append((metric, base, cand, delta, verdict))
    mismatch = (baseline.get("config") or {}) != (candidate.get("config")
                                                  or {})
    return rows, regressions, mismatch


def render(rows, tolerance: float) -> str:
    headers = ("metric", "baseline", "candidate", "delta", "verdict")
    table = [headers, tuple("-" * len(h) for h in headers)]
    for metric, base, cand, delta, verdict in rows:
        table.append((
            metric,
            "-" if base is None else f"{base:.4f}s",
            "-" if cand is None else f"{cand:.4f}s",
            "-" if delta is None else f"{delta:+.1%}",
            verdict,
        ))
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths))
             for row in table]
    lines.append(f"(gate: candidate > baseline x {1 + tolerance:.2f})")
    return "\n".join(lines)


def check_pipeline(candidate: dict, speedup_min: float,
                   warm_max_fraction: float, warm_floor_s: float):
    """Candidate-only pipeline gates; ``(problems, notes)`` lists.

    Gates are skipped (with a note) when the report predates the
    pipeline phases — bench_check still works on v1-era shapes passed
    through a matching baseline.
    """
    problems = []
    notes = []
    phases = candidate.get("phases") or {}
    serial = (phases.get("characterize") or {}).get("wall_s")
    parallel = (phases.get("characterize_parallel") or {}).get("wall_s")
    warm = (phases.get("characterize_warm") or {}).get("wall_s")
    if serial is None or parallel is None:
        notes.append("pipeline gates skipped: no characterize_parallel "
                     "phase in candidate")
        return problems, notes
    speedup = (candidate.get("pipeline") or {}).get("speedup")
    if speedup is None:
        speedup = serial / parallel if parallel > 0 else float("inf")
    if speedup < speedup_min:
        problems.append(
            f"pipeline speedup {speedup:.2f}x is below the "
            f"{speedup_min:.2f}x gate (serial {serial:.3f}s vs "
            f"parallel {parallel:.3f}s)")
    else:
        notes.append(f"pipeline speedup {speedup:.2f}x "
                     f"(gate: >= {speedup_min:.2f}x)")
    if warm is None:
        notes.append("warm-cache gate skipped: no characterize_warm "
                     "phase in candidate")
        return problems, notes
    warm_budget = max(warm_max_fraction * serial, warm_floor_s)
    if warm > warm_budget:
        problems.append(
            f"warm-cache rerun {warm:.3f}s exceeds its budget "
            f"{warm_budget:.3f}s (max({warm_max_fraction:.0%} of serial "
            f"{serial:.3f}s, {warm_floor_s:.2f}s floor))")
    else:
        notes.append(f"warm-cache rerun {warm:.3f}s within budget "
                     f"{warm_budget:.3f}s")
    return problems, notes


def check_fastforward(candidate: dict, speedup_min: float):
    """Candidate-only fast-forward gate; ``(problems, notes)`` lists.

    The campaign and campaign_fastforward phases run the same seeded
    cells (bit-identical outcomes), so their wall-time ratio is a pure
    engine speedup — gated on the candidate alone, like the pipeline.
    """
    problems = []
    notes = []
    phases = candidate.get("phases") or {}
    full = (phases.get("campaign") or {}).get("wall_s")
    fast = (phases.get("campaign_fastforward") or {}).get("wall_s")
    if full is None or fast is None:
        notes.append("fast-forward gate skipped: no campaign_fastforward "
                     "phase in candidate")
        return problems, notes
    speedup = (candidate.get("fastforward") or {}).get("speedup")
    if speedup is None:
        speedup = full / fast if fast > 0 else float("inf")
    if speedup < speedup_min:
        problems.append(
            f"campaign fast-forward speedup {speedup:.2f}x is below the "
            f"{speedup_min:.2f}x gate (full replay {full:.3f}s vs "
            f"fast-forward {fast:.3f}s)")
    else:
        notes.append(f"campaign fast-forward speedup {speedup:.2f}x "
                     f"(gate: >= {speedup_min:.2f}x)")
    return problems, notes


def check_journal(candidate: dict, overhead_max: float,
                  overhead_floor_s: float):
    """Candidate-only journal-overhead gate; ``(problems, notes)``.

    The campaign and campaign_journal phases run the same seeded cells;
    their wall-time delta is the pure cost of crash-consistent
    journaling under the configured fsync policy.  The budget is
    ``max(overhead_max * campaign, overhead_floor_s)`` — like the
    warm-cache gate, the absolute floor keeps sub-second campaign
    phases from gating on scheduler noise.
    """
    problems = []
    notes = []
    phases = candidate.get("phases") or {}
    plain = (phases.get("campaign") or {}).get("wall_s")
    journaled = (phases.get("campaign_journal") or {}).get("wall_s")
    if plain is None or journaled is None:
        notes.append("journal gate skipped: no campaign_journal phase "
                     "in candidate")
        return problems, notes
    fsync = (candidate.get("journal") or {}).get("fsync", "?")
    delta = journaled - plain
    budget = max(overhead_max * plain, overhead_floor_s)
    overhead = delta / plain if plain > 0 else float("inf")
    if delta > budget:
        problems.append(
            f"journal overhead {delta:.3f}s ({overhead:+.1%}, "
            f"fsync={fsync}) exceeds its budget {budget:.3f}s "
            f"(max({overhead_max:.0%} of campaign {plain:.3f}s, "
            f"{overhead_floor_s:.2f}s floor))")
    else:
        notes.append(f"journal overhead {delta:.3f}s ({overhead:+.1%}, "
                     f"fsync={fsync}) within budget {budget:.3f}s")
    return problems, notes


def check_bitsim(candidate: dict, speedup_min: float):
    """Candidate-only bit-parallel engine gate; ``(problems, notes)``.

    The characterize_gate and characterize_bitparallel phases analyse
    the byte-identical packed vector stream through the event-driven
    reference and the levelized bit-parallel engine, so their wall-time
    ratio is a pure engine speedup — and any verdict divergence between
    the two is a correctness failure, never acceptable noise.
    """
    problems = []
    notes = []
    phases = candidate.get("phases") or {}
    event = (phases.get("characterize_gate") or {}).get("wall_s")
    fast = (phases.get("characterize_bitparallel") or {}).get("wall_s")
    if event is None or fast is None:
        notes.append("bitsim gate skipped: no characterize_bitparallel "
                     "phase in candidate")
        return problems, notes
    backend = candidate.get("backend") or {}
    if backend.get("verdicts_equal") is False:
        problems.append(
            "bit-parallel verdicts diverged from the event reference on "
            "the shared vector stream (backend.verdicts_equal is false)")
    speedup = backend.get("speedup")
    if speedup is None:
        speedup = event / fast if fast > 0 else float("inf")
    if speedup < speedup_min:
        problems.append(
            f"bit-parallel speedup {speedup:.2f}x is below the "
            f"{speedup_min:.2f}x gate (event {event:.3f}s vs "
            f"bit-parallel {fast:.3f}s)")
    else:
        notes.append(f"bit-parallel speedup {speedup:.2f}x "
                     f"(gate: >= {speedup_min:.2f}x)")
    return problems, notes


def check_observability(candidate: dict, overhead_max: float,
                        overhead_floor_s: float):
    """Candidate-only observability-overhead gate; ``(problems, notes)``.

    The campaign and campaign_observed phases run the same seeded cells;
    their wall-time delta is the pure cost of the live observer stack
    (metrics + status board + trajectory recorder + HTTP control
    plane).  The budget is ``max(overhead_max * campaign,
    overhead_floor_s)`` — the absolute floor keeps sub-second campaign
    phases from gating on scheduler noise.  A failed mid-run scrape is
    a correctness failure, never acceptable noise.
    """
    problems = []
    notes = []
    phases = candidate.get("phases") or {}
    plain = (phases.get("campaign") or {}).get("wall_s")
    observed = (phases.get("campaign_observed") or {}).get("wall_s")
    if plain is None or observed is None:
        notes.append("observability gate skipped: no campaign_observed "
                     "phase in candidate")
        return problems, notes
    block = candidate.get("observability") or {}
    if block.get("scrape_ok") is False:
        problems.append(
            "control plane scrape failed during the observed campaign "
            "(observability.scrape_ok is false)")
    delta = observed - plain
    budget = max(overhead_max * plain, overhead_floor_s)
    overhead = delta / plain if plain > 0 else float("inf")
    if delta > budget:
        problems.append(
            f"observability overhead {delta:.3f}s ({overhead:+.1%}) "
            f"exceeds its budget {budget:.3f}s "
            f"(max({overhead_max:.0%} of campaign {plain:.3f}s, "
            f"{overhead_floor_s:.2f}s floor))")
    else:
        notes.append(f"observability overhead {delta:.3f}s "
                     f"({overhead:+.1%}) within budget {budget:.3f}s")
    return problems, notes


def check_adaptive(candidate: dict, savings_min: float):
    """Candidate-only adaptive-sampling gate; ``(problems, notes)``.

    The campaign and campaign_adaptive phases run the same seeded
    cells, and every adaptive cell is an exact run-for-run prefix of
    its fixed-N twin, so the saved fraction is a pure sampler win —
    but it only counts at an equal verdict: each fixed-N AVM must land
    inside the adaptive stop interval, or the early stop changed the
    answer and the gate fails regardless of the savings.
    """
    problems = []
    notes = []
    phases = candidate.get("phases") or {}
    if (phases.get("campaign_adaptive") or {}).get("wall_s") is None:
        notes.append("adaptive gate skipped: no campaign_adaptive phase "
                     "in candidate")
        return problems, notes
    block = candidate.get("adaptive") or {}
    if block.get("verdicts_equal") is False:
        bad = [cell.get("cell", "?") for cell in block.get("cells", [])
               if cell.get("verdict_equal") is False]
        problems.append(
            "adaptive verdicts diverged from fixed-N (fixed AVM outside "
            f"the stop interval) in: {', '.join(bad) or 'unknown cells'}")
    savings = block.get("savings_fraction")
    executed = block.get("executed_runs", "?")
    budget = block.get("budget_runs", "?")
    if savings is None:
        notes.append("adaptive savings gate skipped: no savings_fraction "
                     "in candidate")
    elif savings < savings_min:
        problems.append(
            f"adaptive sampler saved only {savings:.0%} of the run "
            f"budget ({executed}/{budget} runs), below the "
            f"{savings_min:.0%} gate")
    else:
        notes.append(f"adaptive sampler saved {savings:.0%} of the run "
                     f"budget ({executed}/{budget} runs, gate: >= "
                     f"{savings_min:.0%})")
    return problems, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate a fresh pipeline benchmark against the "
                    "committed baseline.")
    parser.add_argument("--baseline", default="BENCH_campaign.json",
                        help="committed reference report")
    parser.add_argument("--candidate", required=True,
                        help="freshly measured report to gate")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional slowdown per metric "
                             "(default 0.25 = +25%%)")
    parser.add_argument("--min-seconds", type=float, default=0.01,
                        help="ignore metrics below this wall time on "
                             "both sides (noise floor)")
    parser.add_argument("--pipeline-speedup-min", type=float, default=2.0,
                        help="required characterize/characterize_parallel "
                             "speedup in the candidate (default 2.0)")
    parser.add_argument("--warm-max-fraction", type=float, default=0.15,
                        help="warm-cache rerun budget as a fraction of "
                             "the serial characterize phase")
    parser.add_argument("--warm-floor-seconds", type=float, default=0.05,
                        help="absolute floor of the warm-cache budget "
                             "(noise guard for tiny benches)")
    parser.add_argument("--fastforward-speedup-min", type=float,
                        default=2.0,
                        help="required campaign/campaign_fastforward "
                             "speedup in the candidate (default 2.0)")
    parser.add_argument("--journal-overhead-max", type=float,
                        default=0.05,
                        help="allowed campaign_journal overhead over "
                             "the unjournaled campaign phase "
                             "(default 0.05 = +5%%)")
    parser.add_argument("--journal-overhead-floor-seconds", type=float,
                        default=0.1,
                        help="absolute floor of the journal overhead "
                             "budget (noise guard for sub-second "
                             "campaign phases)")
    parser.add_argument("--bitsim-speedup-min", type=float, default=8.0,
                        help="required characterize_gate/"
                             "characterize_bitparallel speedup in the "
                             "candidate (default 8.0)")
    parser.add_argument("--observability-overhead-max", type=float,
                        default=0.05,
                        help="allowed campaign_observed overhead over "
                             "the unobserved campaign phase "
                             "(default 0.05 = +5%%)")
    parser.add_argument("--observability-overhead-floor-seconds",
                        type=float, default=0.1,
                        help="absolute floor of the observability "
                             "overhead budget (noise guard for "
                             "sub-second campaign phases)")
    parser.add_argument("--adaptive-savings-min", type=float,
                        default=0.25,
                        help="required fraction of the fixed-N run "
                             "budget saved by the campaign_adaptive "
                             "phase at equal verdicts (default 0.25)")
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(Path(args.baseline).read_text())
        candidate = json.loads(Path(args.candidate).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_check: cannot load reports: {exc}", file=sys.stderr)
        return 2
    if baseline.get("schema_version") != candidate.get("schema_version"):
        print("bench_check: schema_version mismatch "
              f"({baseline.get('schema_version')} vs "
              f"{candidate.get('schema_version')}); re-measure the "
              "baseline", file=sys.stderr)
        return 2

    rows, regressions, mismatch = compare(
        baseline, candidate, args.tolerance, args.min_seconds)
    print(render(rows, args.tolerance))
    if mismatch:
        print("warning: benchmark configs differ between baseline and "
              "candidate; deltas may not be comparable")
    pipeline_problems, pipeline_notes = check_pipeline(
        candidate, args.pipeline_speedup_min, args.warm_max_fraction,
        args.warm_floor_seconds)
    ff_problems, ff_notes = check_fastforward(
        candidate, args.fastforward_speedup_min)
    journal_problems, journal_notes = check_journal(
        candidate, args.journal_overhead_max,
        args.journal_overhead_floor_seconds)
    bitsim_problems, bitsim_notes = check_bitsim(
        candidate, args.bitsim_speedup_min)
    obs_problems, obs_notes = check_observability(
        candidate, args.observability_overhead_max,
        args.observability_overhead_floor_seconds)
    adaptive_problems, adaptive_notes = check_adaptive(
        candidate, args.adaptive_savings_min)
    pipeline_problems += (ff_problems + journal_problems + bitsim_problems
                          + obs_problems + adaptive_problems)
    pipeline_notes += (ff_notes + journal_notes + bitsim_notes + obs_notes
                       + adaptive_notes)
    for note in pipeline_notes:
        print(f"bench_check: {note}")
    failed = False
    if regressions:
        print(f"bench_check: {len(regressions)} metric(s) regressed past "
              f"+{args.tolerance:.0%}: {', '.join(regressions)}",
              file=sys.stderr)
        failed = True
    for problem in pipeline_problems:
        print(f"bench_check: {problem}", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("bench_check: no regression past tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
