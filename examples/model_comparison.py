#!/usr/bin/env python
"""Compare the DA, IA and WA error models on one benchmark (Figs. 9/10).

Reproduces the paper's central comparison in miniature: the same
injection harness driven by the three models of Table I, showing how the
data-agnostic and instruction-aware models mispredict both the error
ratio and the outcome distribution relative to trace-exact
workload-aware injection.

Run:  python examples/model_comparison.py [benchmark]
"""

import sys

from repro import (
    CampaignRunner,
    VR15,
    VR20,
    characterize_da,
    characterize_ia,
    characterize_wa,
    make_workload,
)
from repro.campaign.report import error_ratio_table, feature_matrix, outcome_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "hotspot"
    points = [VR15, VR20]

    workload = make_workload(name, scale="small", seed=2021)
    runner = CampaignRunner(workload, seed=2021)
    profile = runner.golden().profile

    print("== model development phase ==")
    wa = characterize_wa(profile, points)
    ia = characterize_ia(points, samples_per_op=40_000)
    # DA's fixed ratio comes from instructions randomly extracted from the
    # whole benchmark mix (Section IV.C.1), not just the target program.
    mix_profiles = [profile]
    for other in ("srad_v1", "kmeans", "cg"):
        if other != name:
            other_runner = CampaignRunner(
                make_workload(other, scale="tiny", seed=2021), seed=2021
            )
            mix_profiles.append(other_runner.golden().profile)
    da = characterize_da(mix_profiles, points, sample_per_point=40_000)
    print(feature_matrix([da, ia, wa]))

    print("\n== application evaluation phase (160 runs per cell) ==")
    results = []
    for model in (da, ia, wa):
        for point in points:
            results.append(runner.campaign(model, point, runs=160))

    print(outcome_table(results))
    print()
    print(error_ratio_table(results))

    wa15 = next(r for r in results if r.model == "WA" and r.point == "VR15")
    da15 = next(r for r in results if r.model == "DA" and r.point == "VR15")
    print()
    if wa15.avm == 0.0 and da15.avm > 0.0:
        print(f"{name} is safe at VR15 according to the workload-aware "
              f"model, but the data-agnostic model reports AVM = "
              f"{da15.avm:.0%} — the misleading pessimism the paper "
              f"quantifies.")


if __name__ == "__main__":
    main()
