#!/usr/bin/env python
"""Bring your own workload: assess any FP kernel for timing errors.

Shows the two extension points a downstream user needs:

1. a custom :class:`~repro.workloads.base.Workload` (here: a small
   Gauss-Seidel solver) whose FP arithmetic runs through the framework's
   interposition context, characterised and campaigned like the built-in
   benchmarks;
2. the instruction-level view: the tiny functional core executing an
   assembly program with an injected timing-error bitmask, demonstrating
   the exact destination-register corruption semantics.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import CampaignRunner, VR15, VR20, characterize_wa
from repro.fpu.formats import FpOp
from repro.uarch.core import FunctionalCore
from repro.uarch.isa import Instruction
from repro.utils.ieee754 import bits64_to_float, float_to_bits64
from repro.workloads.base import FPContext, Workload


class GaussSeidel(Workload):
    """Dense Gauss-Seidel iterations on a diagonally dominant system."""

    name = "gauss_seidel"
    classification = "Residual verification"
    mix_name = "default"
    trap_nonfinite = True

    def _build_input(self) -> None:
        n = {"tiny": 12, "small": 24, "paper": 48}[self.scale]
        rng = np.random.default_rng(self.seed)
        self.a = rng.normal(size=(n, n))
        self.a[np.arange(n), np.arange(n)] = np.abs(self.a).sum(axis=1) + 1.0
        self.b = rng.normal(size=n)
        self.n = n
        self.sweeps = 12
        self.input_descriptor = f"{n}x{n}, {self.sweeps} sweeps"

    def run(self, ctx: FPContext) -> float:
        x = np.zeros(self.n)
        for _ in range(self.sweeps):
            for i in range(self.n):
                row = ctx.mul(self.a[i], x)
                off_diag = ctx.sub(ctx.sum(row), row[i])
                x[i] = ctx.div(ctx.sub(self.b[i], off_diag),
                               self.a[i, i])
        residual = ctx.sub(ctx.mul(self.a, x[None, :]).sum(axis=1), self.b)
        return float(ctx.sum(ctx.mul(residual, residual)))

    def outputs_equal(self, golden, observed) -> bool:
        if not np.isfinite(observed):
            return False
        return abs(observed - golden) <= 1e-12 * max(1.0, abs(golden))


def assembly_demo() -> None:
    print("== instruction-level injection semantics ==")
    program = [
        Instruction("fp", dest=3, src1=1, src2=2, fp_op=FpOp.MUL_D),
        Instruction("fp", dest=4, src1=3, src2=1, fp_op=FpOp.ADD_D),
        Instruction("halt"),
    ]
    golden_core = FunctionalCore()
    golden_core.fp_regs[1] = float_to_bits64(3.0)
    golden_core.fp_regs[2] = float_to_bits64(7.0)
    golden_core.run(program)

    faulty_core = FunctionalCore()
    faulty_core.fp_regs[1] = float_to_bits64(3.0)
    faulty_core.fp_regs[2] = float_to_bits64(7.0)
    bitmask = (1 << 51) | (1 << 50)  # a multi-bit mantissa corruption
    faulty_core.run(program, inject={0: bitmask})

    print(f"  golden:  3*7 + 3 = "
          f"{bits64_to_float(golden_core.fp_regs[4])}")
    print(f"  faulty (mask {bitmask:#x} on the multiply): "
          f"{bits64_to_float(faulty_core.fp_regs[4])}")


def main() -> None:
    assembly_demo()

    print("\n== custom workload through the full pipeline ==")
    workload = GaussSeidel(scale="small", seed=7)
    runner = CampaignRunner(workload, seed=7)
    profile = runner.golden().profile
    print(f"  {workload.input_descriptor}: "
          f"{profile.fp_instructions:,} FP instructions")

    model = characterize_wa(profile, [VR15, VR20])
    for point in (VR15, VR20):
        result = runner.campaign(model, point, runs=160)
        print(f"  {point.name}: ER {result.error_ratio:.2e}, "
              f"AVM {result.avm:.1%}, outcomes {result.counts}")


if __name__ == "__main__":
    main()
