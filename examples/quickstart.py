#!/usr/bin/env python
"""Quickstart: characterise a benchmark and run an injection campaign.

Walks the full cross-layer flow of the paper on one benchmark:

1. golden run (profile + pipeline schedule),
2. workload-aware model development (trace-level DTA),
3. a statistically sized injection campaign at 15 % and 20 % undervolt,
4. outcome classification and the Application Vulnerability Metric.

Run:  python examples/quickstart.py [benchmark]
"""

import sys

from repro import (
    CampaignRunner,
    Outcome,
    VR15,
    VR20,
    characterize_wa,
    make_workload,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "sobel"
    print(f"== {name}: golden run ==")
    workload = make_workload(name, scale="small", seed=2021)
    runner = CampaignRunner(workload, seed=2021)
    golden = runner.golden()
    profile = golden.profile
    print(f"  input: {workload.input_descriptor}")
    print(f"  dynamic FP instructions: {profile.fp_instructions:,}")
    print(f"  total instructions (with {workload.ops_per_fp:.0f}x non-FP "
          f"expansion): {profile.total_instructions:,}")
    print(f"  estimated cycles: {golden.schedule.total_cycles:,} "
          f"(CPI {golden.schedule.cpi:.2f})")
    print(f"  microarchitectural masking: "
          f"{golden.masking.total_rate:.1%} of injected errors")

    print("\n== model development: trace-level DTA ==")
    model = characterize_wa(profile, [VR15, VR20])
    for point in (VR15, VR20):
        ratio = model.error_ratio(profile, point)
        print(f"  {point.name} ({point.voltage:.3f} V): "
              f"error ratio {ratio:.3e} "
              f"({model.faulty_population(point)} faulty instructions "
              f"in the analysed trace)")

    print("\n== injection campaigns (240 runs per level) ==")
    for point in (VR15, VR20):
        result = runner.campaign(model, point, runs=240)
        fractions = result.counts.fractions()
        print(f"  {point.name}: "
              + "  ".join(f"{o.value} {fractions[o]:6.1%}" for o in Outcome)
              + f"   AVM = {result.avm:.1%}")

    print("\nInterpretation: AVM = 0 means the benchmark can run at that")
    print("voltage with no observable effect — the energy-saving window")
    print("the paper's workload-aware model exposes.")


if __name__ == "__main__":
    main()
