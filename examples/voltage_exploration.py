#!/usr/bin/env python
"""AVM-guided voltage exploration beyond the paper's two VR levels.

The paper studies VR15 and VR20; the framework characterises any
operating point.  This example sweeps 5-30 % undervolting for every
benchmark, finds each one's AVM-safe minimum voltage, and reports the
paper-style power/energy savings — including the mitigation-enabled
operating points of Section V.C.

Run:  python examples/voltage_exploration.py
"""

from repro import (
    CampaignRunner,
    EnergyAnalysis,
    NOMINAL,
    TECHNOLOGY,
    characterize_wa,
    make_workload,
)
from repro.workloads import WORKLOADS


def main() -> None:
    reductions = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30)
    points = [TECHNOLOGY.operating_point(r) for r in reductions]
    energy = EnergyAnalysis()

    print("Workload-aware error ratio per operating point")
    print("  (0 means the workload provably meets timing there)\n")
    header = "  benchmark   " + "  ".join(f"{p.name:>8s}" for p in points)
    print(header)

    safe_choices = {}
    mitigated = {}
    for name in sorted(WORKLOADS):
        workload = make_workload(name, scale="small", seed=2021)
        runner = CampaignRunner(workload, seed=2021)
        profile = runner.golden().profile
        model = characterize_wa(profile, points)
        ratios = [model.error_ratio(profile, p) for p in points]
        print(f"  {name:10s}  "
              + "  ".join(f"{r:8.1e}" for r in ratios))

        # Strict Vmin: deepest point whose trace shows zero errors.
        sweep = [(NOMINAL, 0.0)] + [
            (p, 0.0 if r == 0 else 1.0) for p, r in zip(points, ratios)
        ]
        safe_choices[name] = energy.safe_point(sweep)
        # Mitigation-enabled best point (replay cost per predicted error).
        mitigated[name] = energy.best_mitigated_point(
            [(NOMINAL, 0.0)] + list(zip(points, ratios))
        )

    print("\nAVM-guided operating points and savings:")
    for name, point in sorted(safe_choices.items()):
        m_point, m_saving = mitigated[name]
        print(f"  {name:10s} strict Vmin {point.name} "
              f"({point.voltage:.3f} V, power -{energy.power_saving(point):.0%}, "
              f"energy -{energy.energy_saving_with_guardband(point):.0%})  |  "
              f"with mitigation: {m_point.name} "
              f"(energy -{m_saving:.0%})")

    print("\nThe spread across benchmarks is the paper's point: a fixed")
    print("guardband wastes the headroom of the tolerant workloads.")


if __name__ == "__main__":
    main()
